// Package core defines the node deployment problem from the ClouDiA paper:
// communication graphs over application nodes, injective deployment plans
// mapping nodes to cloud instances, pairwise communication cost matrices, and
// the two deployment cost functions — longest link (Class 1) and longest path
// (Class 2) — that model latency-sensitive HPC and service-oriented cloud
// applications respectively.
package core

import (
	"errors"
	"fmt"
	"sync"
)

// NodeID identifies an application node in a communication graph.
type NodeID = int

// Edge is a directed communication link between two application nodes,
// meaning From talks to To (Definition 3).
type Edge struct {
	From NodeID
	To   NodeID
}

// Graph is a directed communication graph G = (V, E) over application nodes
// 0..n-1. Edges carry no weights; the paper leaves weighted graphs to future
// work and so do we (see DESIGN.md).
type Graph struct {
	n     int
	out   [][]NodeID
	in    [][]NodeID
	edges []Edge
	has   map[Edge]bool

	// Edge weights (see weights.go). nil/empty means all weights are 1.
	weights map[Edge]float64
	edgeW   []float64   // cache: weight per Edges() index
	outW    [][]float64 // cache: weight per out-adjacency slot

	// Incidence caches (see buildIncidence): per-node lists of edge indices,
	// used by the delta evaluators to touch only O(deg) edges per move.
	// incOnce guards the lazy build, so goroutines sharing a finished graph
	// (the multi-tenant serving layer submits many jobs over one graph) can
	// all call EnsureIncidence safely; AddEdge swaps in a fresh Once when it
	// invalidates the caches. Graph construction itself stays single-
	// goroutine.
	incOnce  *sync.Once
	incident [][]int32 // edges with either endpoint == v
	inIdx    [][]int32 // edges with To == v
}

// NewGraph returns an empty communication graph over n application nodes.
// It panics if n is negative.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("core: negative node count %d", n))
	}
	return &Graph{
		n:       n,
		out:     make([][]NodeID, n),
		in:      make([][]NodeID, n),
		has:     make(map[Edge]bool),
		incOnce: new(sync.Once),
	}
}

// NumNodes reports |V|.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges reports |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddEdge inserts the directed edge (from, to). Self-loops and duplicate
// edges are rejected, as is any endpoint outside [0, n).
func (g *Graph) AddEdge(from, to NodeID) error {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		return fmt.Errorf("core: edge (%d,%d) out of range [0,%d)", from, to, g.n)
	}
	if from == to {
		return fmt.Errorf("core: self-loop at node %d", from)
	}
	e := Edge{from, to}
	if g.has[e] {
		return fmt.Errorf("core: duplicate edge (%d,%d)", from, to)
	}
	g.has[e] = true
	g.out[from] = append(g.out[from], to)
	g.in[to] = append(g.in[to], from)
	g.edges = append(g.edges, e)
	g.incident, g.inIdx = nil, nil // invalidate incidence caches
	g.incOnce = new(sync.Once)
	if len(g.weights) > 0 {
		// Keep the weight caches aligned with the new edge.
		g.rebuildWeightCaches()
	}
	return nil
}

// EnsureIncidence builds the per-node incidence caches if they are stale.
// Safe to call concurrently with itself on a finished graph — goroutines
// racing the first call serialize behind one build and then share it (the
// serving layer submits many concurrent jobs over one graph). It is still
// not safe to call concurrently with AddEdge: graph construction is
// single-goroutine, as everywhere else in core.
func (g *Graph) EnsureIncidence() {
	g.incOnce.Do(g.buildIncidence)
}

func (g *Graph) buildIncidence() {
	incident := make([][]int32, g.n)
	inIdx := make([][]int32, g.n)
	for k, e := range g.edges {
		incident[e.From] = append(incident[e.From], int32(k))
		incident[e.To] = append(incident[e.To], int32(k))
		inIdx[e.To] = append(inIdx[e.To], int32(k))
	}
	g.inIdx = inIdx
	g.incident = incident
}

// IncidentEdgeIDs returns the indices (into Edges()) of every edge with v as
// either endpoint. Callers must not modify the returned slice.
func (g *Graph) IncidentEdgeIDs(v NodeID) []int32 {
	g.EnsureIncidence()
	return g.incident[v]
}

// InEdgeIDs returns the indices (into Edges()) of every edge into v. Callers
// must not modify the returned slice.
func (g *Graph) InEdgeIDs(v NodeID) []int32 {
	g.EnsureIncidence()
	return g.inIdx[v]
}

// EdgeWeight reports the weight of the k-th edge in Edges() order (1 for
// unweighted graphs), without a map lookup.
func (g *Graph) EdgeWeight(k int) float64 { return g.edgeWeight(k) }

// AddBiEdge inserts both (a,b) and (b,a). It is a convenience for mesh-like
// templates where communication is symmetric.
func (g *Graph) AddBiEdge(a, b NodeID) error {
	if err := g.AddEdge(a, b); err != nil {
		return err
	}
	return g.AddEdge(b, a)
}

// HasEdge reports whether the directed edge (from, to) is present.
func (g *Graph) HasEdge(from, to NodeID) bool { return g.has[Edge{from, to}] }

// Edges returns the edge list in insertion order. Callers must not modify
// the returned slice.
func (g *Graph) Edges() []Edge { return g.edges }

// Out returns the out-neighbours of node v. Callers must not modify the
// returned slice.
func (g *Graph) Out(v NodeID) []NodeID { return g.out[v] }

// In returns the in-neighbours of node v. Callers must not modify the
// returned slice.
func (g *Graph) In(v NodeID) []NodeID { return g.in[v] }

// OutDegree reports len(Out(v)).
func (g *Graph) OutDegree(v NodeID) int { return len(g.out[v]) }

// InDegree reports len(In(v)).
func (g *Graph) InDegree(v NodeID) int { return len(g.in[v]) }

// Degree reports the total degree of v (in + out).
func (g *Graph) Degree(v NodeID) int { return len(g.in[v]) + len(g.out[v]) }

// Clone returns a deep copy of the graph, including edge weights.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.n)
	for _, e := range g.edges {
		// Edges were validated on insertion; re-adding cannot fail.
		if err := c.AddEdge(e.From, e.To); err != nil {
			panic("core: clone of valid graph failed: " + err.Error())
		}
	}
	// Weights are attached in edge-list order, not weight-map order, so a
	// clone's internal layout is reproducible run to run (maprange).
	if len(g.weights) > 0 {
		for _, e := range g.edges {
			w, ok := g.weights[e]
			if !ok {
				continue
			}
			if err := c.SetWeight(e.From, e.To, w); err != nil {
				panic("core: clone of valid weights failed: " + err.Error())
			}
		}
	}
	return c
}

// Transposed returns the graph with every edge reversed, carrying edge
// weights along. The reverse of a valid edge set is valid, so the transpose
// is assembled directly against the adjacency structures in a single pass
// over the edge list — weights are attached as each reversed edge is
// inserted, with one weight-cache rebuild at the end, instead of a second
// edge iteration of SetWeight calls that each rebuild the caches.
func (g *Graph) Transposed() *Graph {
	t := NewGraph(g.n)
	t.edges = make([]Edge, 0, len(g.edges))
	for k, e := range g.edges {
		te := Edge{From: e.To, To: e.From}
		t.has[te] = true
		t.out[te.From] = append(t.out[te.From], te.To)
		t.in[te.To] = append(t.in[te.To], te.From)
		t.edges = append(t.edges, te)
		if w := g.edgeWeight(k); w != 1 {
			if t.weights == nil {
				t.weights = make(map[Edge]float64, len(g.weights))
			}
			t.weights[te] = w
		}
	}
	if t.weights != nil {
		t.rebuildWeightCaches()
	}
	return t
}

// ErrCyclic is returned when a DAG-only operation is applied to a graph that
// contains a directed cycle.
var ErrCyclic = errors.New("core: communication graph contains a directed cycle")

// TopoOrder returns a topological order of the graph's nodes, or ErrCyclic if
// the graph has a directed cycle. Nodes with no edges appear in the order too.
func (g *Graph) TopoOrder() ([]NodeID, error) {
	indeg := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		indeg[v] = len(g.in[v])
	}
	queue := make([]NodeID, 0, g.n)
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]NodeID, 0, g.n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range g.out[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != g.n {
		return nil, ErrCyclic
	}
	return order, nil
}

// IsDAG reports whether the graph is acyclic.
func (g *Graph) IsDAG() bool {
	_, err := g.TopoOrder()
	return err == nil
}

// Validate checks internal consistency of the graph structure. It is used by
// tests and by code paths that deserialize graphs from user input.
func (g *Graph) Validate() error {
	if g.n < 0 {
		return fmt.Errorf("core: negative node count %d", g.n)
	}
	if len(g.out) != g.n || len(g.in) != g.n {
		return errors.New("core: adjacency size mismatch")
	}
	count := 0
	for v := 0; v < g.n; v++ {
		for _, w := range g.out[v] {
			if w < 0 || w >= g.n {
				return fmt.Errorf("core: out-neighbour %d of %d out of range", w, v)
			}
			if !g.has[Edge{v, w}] {
				return fmt.Errorf("core: adjacency edge (%d,%d) missing from edge set", v, w)
			}
			count++
		}
	}
	if count != len(g.edges) {
		return fmt.Errorf("core: edge count mismatch: adjacency %d vs list %d", count, len(g.edges))
	}
	return nil
}
