package core

import "fmt"

// This file carries the Appendix 1 reduction constructions, both as executable
// documentation of the hardness proofs and as generators of structured solver
// test instances: a subgraph isomorphism instance (G1 into G2) becomes a
// LLNDP (or LPNDP) instance whose optimal cost reveals whether the embedding
// exists.

// SIPToLLNDP encodes a subgraph isomorphism instance into a Longest Link Node
// Deployment Problem following the proof of Theorem 1: pattern nodes become
// application nodes, host nodes become instances, host edges get cost 1 and
// non-edges cost 2. G2 contains a subgraph isomorphic to pattern iff the
// optimal longest-link cost is 1.
//
// The host graph must have at least as many nodes as the pattern.
func SIPToLLNDP(pattern, host *Graph) (*Graph, *CostMatrix, error) {
	if host.NumNodes() < pattern.NumNodes() {
		return nil, nil, fmt.Errorf("core: host graph smaller (%d) than pattern (%d)",
			host.NumNodes(), pattern.NumNodes())
	}
	m := NewCostMatrix(host.NumNodes())
	for i := 0; i < host.NumNodes(); i++ {
		for j := 0; j < host.NumNodes(); j++ {
			if i == j {
				continue
			}
			if host.HasEdge(i, j) {
				m.Set(i, j, 1)
			} else {
				m.Set(i, j, 2)
			}
		}
	}
	return pattern.Clone(), m, nil
}

// SIPToLPNDP encodes a subgraph isomorphism instance into a Longest Path Node
// Deployment Problem following the proof of Theorem 4: host edges get cost 1
// and non-edges cost |E1|+1, so an embedding exists iff the optimal
// longest-path cost is at most |E1| (every path uses at most |E1| edges, all
// of cost 1 under an embedding, while a single non-edge already exceeds
// |E1|). The pattern must be a DAG for the LP objective to be defined.
func SIPToLPNDP(pattern, host *Graph) (*Graph, *CostMatrix, error) {
	if !pattern.IsDAG() {
		return nil, nil, ErrCyclic
	}
	if host.NumNodes() < pattern.NumNodes() {
		return nil, nil, fmt.Errorf("core: host graph smaller (%d) than pattern (%d)",
			host.NumNodes(), pattern.NumNodes())
	}
	heavy := float64(pattern.NumEdges() + 1)
	m := NewCostMatrix(host.NumNodes())
	for i := 0; i < host.NumNodes(); i++ {
		for j := 0; j < host.NumNodes(); j++ {
			if i == j {
				continue
			}
			if host.HasEdge(i, j) {
				m.Set(i, j, 1)
			} else {
				m.Set(i, j, heavy)
			}
		}
	}
	return pattern.Clone(), m, nil
}

// EmbeddingRespectsHost reports whether deployment d of the pattern into the
// host uses only host edges, i.e. whether d is a subgraph isomorphism from
// pattern into host.
func EmbeddingRespectsHost(d Deployment, pattern, host *Graph) bool {
	for _, e := range pattern.Edges() {
		if !host.HasEdge(d[e.From], d[e.To]) {
			return false
		}
	}
	return true
}
