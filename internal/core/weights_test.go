package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetWeightValidation(t *testing.T) {
	g := NewGraph(3)
	mustEdge(t, g, 0, 1)
	if err := g.SetWeight(0, 2, 2); err == nil {
		t.Fatal("weight on missing edge accepted")
	}
	if err := g.SetWeight(0, 1, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := g.SetWeight(0, 1, -1); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := g.SetWeight(0, 1, 2.5); err != nil {
		t.Fatalf("valid weight rejected: %v", err)
	}
	if g.Weight(0, 1) != 2.5 {
		t.Fatalf("Weight = %g, want 2.5", g.Weight(0, 1))
	}
}

func TestWeightDefaultsToOne(t *testing.T) {
	g := NewGraph(2)
	mustEdge(t, g, 0, 1)
	if g.Weight(0, 1) != 1 {
		t.Fatal("default weight != 1")
	}
	if g.Weighted() {
		t.Fatal("unweighted graph reports Weighted")
	}
}

func TestSetWeightOneClearsWeighting(t *testing.T) {
	g := NewGraph(2)
	mustEdge(t, g, 0, 1)
	if err := g.SetWeight(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("not weighted after SetWeight(3)")
	}
	if err := g.SetWeight(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if g.Weighted() {
		t.Fatal("still weighted after resetting to 1")
	}
}

func TestDistinctWeights(t *testing.T) {
	g := NewGraph(3)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 0, 2)
	if err := g.SetWeight(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.SetWeight(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	dw := g.DistinctWeights()
	if len(dw) != 2 { // {2, 1}
		t.Fatalf("DistinctWeights = %v, want two classes", dw)
	}
}

func TestWeightedLongestLink(t *testing.T) {
	g := NewGraph(3)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	m := NewCostMatrix(3)
	m.Set(0, 1, 1.0)
	m.Set(1, 2, 0.4)
	d := Identity(3)
	if got := LongestLink(d, g, m); got != 1.0 {
		t.Fatalf("unweighted LL = %g, want 1", got)
	}
	// Weight the cheap edge heavily: 0.4*5 = 2 dominates.
	if err := g.SetWeight(1, 2, 5); err != nil {
		t.Fatal(err)
	}
	if got := LongestLink(d, g, m); got != 2.0 {
		t.Fatalf("weighted LL = %g, want 2", got)
	}
}

func TestWeightedLongestPath(t *testing.T) {
	g := NewGraph(3)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	m := NewCostMatrix(3)
	m.Set(0, 1, 1.0)
	m.Set(1, 2, 2.0)
	if err := g.SetWeight(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	got, err := LongestPath(Identity(3), g, m)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5.0 { // 3*1 + 1*2
		t.Fatalf("weighted LP = %g, want 5", got)
	}
}

func TestCloneCarriesWeights(t *testing.T) {
	g := NewGraph(2)
	mustEdge(t, g, 0, 1)
	if err := g.SetWeight(0, 1, 4); err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	if c.Weight(0, 1) != 4 {
		t.Fatal("clone lost weight")
	}
	if err := c.SetWeight(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if g.Weight(0, 1) != 4 {
		t.Fatal("clone shares weight storage")
	}
}

func TestAddEdgeAfterWeightsKeepsCaches(t *testing.T) {
	g := NewGraph(4)
	mustEdge(t, g, 0, 1)
	if err := g.SetWeight(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	mustEdge(t, g, 1, 2) // must not desync edgeW cache
	mustEdge(t, g, 2, 3)
	m := NewCostMatrix(4)
	m.Set(0, 1, 1)
	m.Set(1, 2, 3)
	m.Set(2, 3, 1)
	if got := LongestLink(Identity(4), g, m); got != 3 {
		t.Fatalf("LL after post-weight AddEdge = %g, want 3", got)
	}
}

// Property: scaling every weight by k scales both deployment costs by k.
func TestWeightScalingProperty(t *testing.T) {
	f := func(seed int64, rawK uint8) bool {
		k := 1 + float64(rawK%40)/10 // in [1, 4.9]
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		g, err := RandomDAG(n, 0.4, rng)
		if err != nil || g.NumEdges() == 0 {
			return true // vacuous
		}
		m := NewCostMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					m.Set(i, j, 0.1+rng.Float64())
				}
			}
		}
		d := Identity(n)
		baseLL := LongestLink(d, g, m)
		baseLP, err := LongestPath(d, g, m)
		if err != nil {
			return false
		}
		for _, e := range g.Edges() {
			if err := g.SetWeight(e.From, e.To, k); err != nil {
				return false
			}
		}
		gotLL := LongestLink(d, g, m)
		gotLP, err := LongestPath(d, g, m)
		if err != nil {
			return false
		}
		return approx(gotLL, k*baseLL) && approx(gotLP, k*baseLP)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func approx(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return diff <= 1e-9*(1+b)
}
