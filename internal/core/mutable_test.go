package core

import (
	"reflect"
	"testing"
)

func TestMutableCostMatrixTracksChangedRows(t *testing.T) {
	m := NewMutableCostMatrix(4)
	if m.Epoch() != 0 {
		t.Fatalf("fresh matrix at epoch %d, want 0", m.Epoch())
	}
	if !m.Set(1, 2, 3.5) || !m.Set(3, 0, 1.25) {
		t.Fatal("first writes must report a change")
	}
	if m.Set(1, 2, 3.5) {
		t.Fatal("re-writing an identical value must not report a change")
	}
	if got := m.ChangedRows(); !reflect.DeepEqual(got, []int{1, 3}) {
		t.Fatalf("ChangedRows = %v, want [1 3]", got)
	}

	snap, rows := m.Snapshot()
	if !reflect.DeepEqual(rows, []int{1, 3}) {
		t.Fatalf("snapshot changed rows = %v, want [1 3]", rows)
	}
	if m.Epoch() != 1 {
		t.Fatalf("epoch = %d after snapshot, want 1", m.Epoch())
	}
	if snap.At(1, 2) != 3.5 || snap.At(3, 0) != 1.25 {
		t.Fatal("snapshot does not carry the written values")
	}
	if err := snap.Validate(); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}

	// Dirty set cleared: an identical re-fold publishes an empty epoch.
	m.Set(1, 2, 3.5)
	if _, rows := m.Snapshot(); len(rows) != 0 {
		t.Fatalf("identical re-fold reported changed rows %v", rows)
	}

	// Snapshots are isolated from later mutation.
	m.Set(1, 2, 9)
	if snap.At(1, 2) != 3.5 {
		t.Fatal("snapshot shares storage with the mutable matrix")
	}
}

func TestMutableCostMatrixAt(t *testing.T) {
	m := NewMutableCostMatrix(3)
	m.Set(0, 2, 7)
	if m.At(0, 2) != 7 || m.At(2, 0) != 0 {
		t.Fatal("At does not reflect Set")
	}
	if m.Size() != 3 {
		t.Fatalf("Size = %d", m.Size())
	}
}
