package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testMatrix(t *testing.T, n int, seed int64) *CostMatrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := NewCostMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, 0.1+rng.Float64())
			}
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("test matrix invalid: %v", err)
	}
	return m
}

func TestCostMatrixBasics(t *testing.T) {
	m := NewCostMatrix(3)
	m.Set(0, 1, 2.5)
	m.Set(1, 0, 1.5) // asymmetric on purpose
	if m.At(0, 1) != 2.5 || m.At(1, 0) != 1.5 {
		t.Fatalf("At: got (%g,%g), want (2.5,1.5)", m.At(0, 1), m.At(1, 0))
	}
	if m.Size() != 3 {
		t.Fatalf("Size = %d, want 3", m.Size())
	}
	c := m.Clone()
	c.Set(0, 1, 9)
	if m.At(0, 1) != 2.5 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestCostMatrixValidate(t *testing.T) {
	m := NewCostMatrix(2)
	m.Set(0, 0, 1)
	if err := m.Validate(); err == nil {
		t.Fatal("nonzero diagonal accepted")
	}
	m = NewCostMatrix(2)
	m.Set(0, 1, -1)
	if err := m.Validate(); err == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestOffDiagonalAndDistinct(t *testing.T) {
	m := NewCostMatrix(3)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(0, 2, 2)
	m.Set(2, 0, 3)
	m.Set(1, 2, 2)
	m.Set(2, 1, 1)
	od := m.OffDiagonal()
	if len(od) != 6 {
		t.Fatalf("OffDiagonal len = %d, want 6", len(od))
	}
	dv := m.DistinctValues()
	if len(dv) != 3 || dv[0] != 1 || dv[1] != 2 || dv[2] != 3 {
		t.Fatalf("DistinctValues = %v, want [1 2 3]", dv)
	}
	if m.MaxValue() != 3 {
		t.Fatalf("MaxValue = %g, want 3", m.MaxValue())
	}
}

func TestDeploymentValidate(t *testing.T) {
	d := Deployment{0, 2, 4}
	if err := d.Validate(5); err != nil {
		t.Fatalf("valid deployment rejected: %v", err)
	}
	if err := d.Validate(4); err == nil {
		t.Fatal("out-of-range instance accepted")
	}
	dup := Deployment{0, 2, 2}
	if err := dup.Validate(5); err == nil {
		t.Fatal("non-injective deployment accepted")
	}
}

func TestIdentityDeployment(t *testing.T) {
	d := Identity(4)
	for i, inst := range d {
		if inst != i {
			t.Fatalf("Identity[%d] = %d", i, inst)
		}
	}
	if err := d.Validate(4); err != nil {
		t.Fatalf("identity invalid: %v", err)
	}
}

func TestLongestLink(t *testing.T) {
	g := NewGraph(3)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	m := NewCostMatrix(4)
	m.Set(0, 1, 5)
	m.Set(1, 3, 2)
	// Deployment: node0->inst0, node1->inst1, node2->inst3.
	d := Deployment{0, 1, 3}
	if got := LongestLink(d, g, m); got != 5 {
		t.Fatalf("LongestLink = %g, want 5", got)
	}
	// Remap node0 to instance 2: edge (0,1) now costs CL(2,1)=0.
	d2 := Deployment{2, 1, 3}
	if got := LongestLink(d2, g, m); got != 2 {
		t.Fatalf("LongestLink = %g, want 2", got)
	}
}

func TestLongestPathChain(t *testing.T) {
	// Path 0->1->2 under identity deployment: cost = CL(0,1)+CL(1,2).
	g := NewGraph(3)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	m := NewCostMatrix(3)
	m.Set(0, 1, 1.5)
	m.Set(1, 2, 2.5)
	got, err := LongestPath(Identity(3), g, m)
	if err != nil {
		t.Fatalf("LongestPath: %v", err)
	}
	if got != 4 {
		t.Fatalf("LongestPath = %g, want 4", got)
	}
}

func TestLongestPathBranching(t *testing.T) {
	// Diamond 0->1->3, 0->2->3; the heavier branch dominates.
	g := NewGraph(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 3)
	m := NewCostMatrix(4)
	m.Set(0, 1, 1)
	m.Set(1, 3, 1)
	m.Set(0, 2, 3)
	m.Set(2, 3, 4)
	got, err := LongestPath(Identity(4), g, m)
	if err != nil {
		t.Fatalf("LongestPath: %v", err)
	}
	if got != 7 {
		t.Fatalf("LongestPath = %g, want 7", got)
	}
}

func TestLongestPathRejectsCycle(t *testing.T) {
	g := NewGraph(2)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 0)
	m := NewCostMatrix(2)
	if _, err := LongestPath(Identity(2), g, m); err != ErrCyclic {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
}

// Property: longest path >= longest link on any DAG, since a single edge is a
// path; and both costs are nonnegative.
func TestLongestPathDominatesLink(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g, err := RandomDAG(n, 0.4, rng)
		if err != nil {
			return false
		}
		m := NewCostMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					m.Set(i, j, rng.Float64())
				}
			}
		}
		d := Identity(n)
		ll := LongestLink(d, g, m)
		lp, err := LongestPath(d, g, m)
		if err != nil {
			return false
		}
		return lp >= ll && ll >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: deployment cost is invariant under relabeling instances with
// identical cost rows/columns — exercised here as: permuting which unused
// instances exist does not change cost.
func TestCostIgnoresUnusedInstances(t *testing.T) {
	g, err := Mesh2D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := testMatrix(t, 6, 7)
	d := Deployment{0, 2, 3, 5} // instances 1 and 4 unused
	base := LongestLink(d, g, m)
	// Rewriting costs touching unused instances must not change CLL.
	m2 := m.Clone()
	for j := 0; j < 6; j++ {
		if j != 1 {
			m2.Set(1, j, 99)
			m2.Set(j, 1, 99)
		}
		if j != 4 {
			m2.Set(4, j, 99)
			m2.Set(j, 4, 99)
		}
	}
	if got := LongestLink(d, g, m2); got != base {
		t.Fatalf("cost changed when unused-instance rows changed: %g vs %g", got, base)
	}
}

func TestLongestPathWithOrderMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := RandomDAG(15, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	m := testMatrix(t, 15, 5)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	d := Identity(15)
	want, err := LongestPath(d, g, m)
	if err != nil {
		t.Fatal(err)
	}
	if got := LongestPathWithOrder(d, g, m, order); got != want {
		t.Fatalf("LongestPathWithOrder = %g, want %g", got, want)
	}
}
