package core

import (
	"math/rand"
	"testing"
)

func TestSIPToLLNDPEmbeddingCost(t *testing.T) {
	// Pattern: directed path 0->1->2. Host: 4 nodes with a directed path
	// 1->2->3 plus noise edge 0->2. The embedding exists, so the optimal
	// LLNDP cost must be 1, achieved by mapping (0,1,2) -> (1,2,3).
	pattern := NewGraph(3)
	mustEdge(t, pattern, 0, 1)
	mustEdge(t, pattern, 1, 2)
	host := NewGraph(4)
	mustEdge(t, host, 1, 2)
	mustEdge(t, host, 2, 3)
	mustEdge(t, host, 0, 2)

	g, m, err := SIPToLLNDP(pattern, host)
	if err != nil {
		t.Fatalf("SIPToLLNDP: %v", err)
	}
	d := Deployment{1, 2, 3}
	if got := LongestLink(d, g, m); got != 1 {
		t.Fatalf("embedding cost = %g, want 1", got)
	}
	if !EmbeddingRespectsHost(d, pattern, host) {
		t.Fatal("EmbeddingRespectsHost = false for a valid embedding")
	}
	// A non-embedding deployment must pay cost 2 somewhere.
	bad := Deployment{0, 1, 2}
	if got := LongestLink(bad, g, m); got != 2 {
		t.Fatalf("non-embedding cost = %g, want 2", got)
	}
	if EmbeddingRespectsHost(bad, pattern, host) {
		t.Fatal("EmbeddingRespectsHost = true for an invalid embedding")
	}
}

func TestSIPToLLNDPHostTooSmall(t *testing.T) {
	pattern := NewGraph(3)
	host := NewGraph(2)
	if _, _, err := SIPToLLNDP(pattern, host); err == nil {
		t.Fatal("undersized host accepted")
	}
}

func TestSIPToLPNDPThreshold(t *testing.T) {
	// Pattern path of 2 edges, |E1| = 2. Under an embedding all edges cost 1
	// so CLP <= 2; a single non-host edge costs |E1|+1 = 3 > 2.
	pattern := NewGraph(3)
	mustEdge(t, pattern, 0, 1)
	mustEdge(t, pattern, 1, 2)
	host := NewGraph(3)
	mustEdge(t, host, 0, 1)
	mustEdge(t, host, 1, 2)

	g, m, err := SIPToLPNDP(pattern, host)
	if err != nil {
		t.Fatalf("SIPToLPNDP: %v", err)
	}
	good, err := LongestPath(Identity(3), g, m)
	if err != nil {
		t.Fatal(err)
	}
	if good > float64(pattern.NumEdges()) {
		t.Fatalf("embedding CLP = %g, want <= %d", good, pattern.NumEdges())
	}
	// Swap two nodes to break the embedding.
	bad, err := LongestPath(Deployment{1, 0, 2}, g, m)
	if err != nil {
		t.Fatal(err)
	}
	if bad <= float64(pattern.NumEdges()) {
		t.Fatalf("non-embedding CLP = %g, want > %d", bad, pattern.NumEdges())
	}
}

func TestSIPToLPNDPRejectsCyclicPattern(t *testing.T) {
	pattern := NewGraph(2)
	mustEdge(t, pattern, 0, 1)
	mustEdge(t, pattern, 1, 0)
	host := NewGraph(3)
	if _, _, err := SIPToLPNDP(pattern, host); err != ErrCyclic {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
}

// Random round-trip: plant a random pattern inside a larger host, run the
// reduction, and verify the planted deployment achieves the embedding cost.
func TestSIPReductionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		pn := 3 + rng.Intn(5)
		hn := pn + rng.Intn(5)
		pattern, err := RandomDAG(pn, 0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Plant: host node (i + offset) mirrors pattern node i.
		offset := rng.Intn(hn - pn + 1)
		host := NewGraph(hn)
		for _, e := range pattern.Edges() {
			if err := host.AddEdge(e.From+offset, e.To+offset); err != nil {
				t.Fatal(err)
			}
		}
		// Noise edges.
		for k := 0; k < hn; k++ {
			a, b := rng.Intn(hn), rng.Intn(hn)
			if a != b && !host.HasEdge(a, b) {
				if err := host.AddEdge(a, b); err != nil {
					t.Fatal(err)
				}
			}
		}
		g, m, err := SIPToLLNDP(pattern, host)
		if err != nil {
			t.Fatal(err)
		}
		planted := make(Deployment, pn)
		for i := range planted {
			planted[i] = i + offset
		}
		cost := LongestLink(planted, g, m)
		if pattern.NumEdges() > 0 && cost != 1 {
			t.Fatalf("trial %d: planted embedding cost = %g, want 1", trial, cost)
		}
		if !EmbeddingRespectsHost(planted, pattern, host) {
			t.Fatalf("trial %d: planted embedding rejected", trial)
		}
	}
}
