package core

import (
	"math/rand"
	"testing"
)

func TestMesh2D(t *testing.T) {
	g, err := Mesh2D(3, 4)
	if err != nil {
		t.Fatalf("Mesh2D: %v", err)
	}
	if g.NumNodes() != 12 {
		t.Fatalf("NumNodes = %d, want 12", g.NumNodes())
	}
	// Undirected mesh edge count: rows*(cols-1) + cols*(rows-1), doubled for
	// the two directions.
	want := 2 * (3*3 + 4*2)
	if g.NumEdges() != want {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), want)
	}
	// Corner node 0 talks to right neighbour 1 and down neighbour 4 only.
	if g.Degree(0) != 4 { // 2 neighbours x 2 directions
		t.Fatalf("corner degree = %d, want 4", g.Degree(0))
	}
	// Interior node (1,1) = 5 has 4 neighbours.
	if g.Degree(5) != 8 {
		t.Fatalf("interior degree = %d, want 8", g.Degree(5))
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestMesh2DErrors(t *testing.T) {
	if _, err := Mesh2D(0, 4); err == nil {
		t.Fatal("Mesh2D(0,4) accepted")
	}
	if _, err := Mesh2D(3, -1); err == nil {
		t.Fatal("Mesh2D(3,-1) accepted")
	}
}

func TestMesh3D(t *testing.T) {
	g, err := Mesh3D(2, 3, 4)
	if err != nil {
		t.Fatalf("Mesh3D: %v", err)
	}
	if g.NumNodes() != 24 {
		t.Fatalf("NumNodes = %d, want 24", g.NumNodes())
	}
	// Undirected edges: (x-1)yz + x(y-1)z + xy(z-1) = 12+16+18 = 46, doubled.
	if g.NumEdges() != 92 {
		t.Fatalf("NumEdges = %d, want 92", g.NumEdges())
	}
}

func TestAggregationTree(t *testing.T) {
	g, err := AggregationTree(3, 2)
	if err != nil {
		t.Fatalf("AggregationTree: %v", err)
	}
	if g.NumNodes() != 1+3+9 {
		t.Fatalf("NumNodes = %d, want 13", g.NumNodes())
	}
	if g.NumEdges() != 12 {
		t.Fatalf("NumEdges = %d, want 12", g.NumEdges())
	}
	// Root has in-degree 3 (its children) and out-degree 0.
	if g.InDegree(0) != 3 || g.OutDegree(0) != 0 {
		t.Fatalf("root degrees in=%d out=%d, want 3,0", g.InDegree(0), g.OutDegree(0))
	}
	if !g.IsDAG() {
		t.Fatal("aggregation tree is not a DAG")
	}
}

func TestAggregationTreeDepthZero(t *testing.T) {
	g, err := AggregationTree(4, 0)
	if err != nil {
		t.Fatalf("AggregationTree: %v", err)
	}
	if g.NumNodes() != 1 || g.NumEdges() != 0 {
		t.Fatalf("got %d nodes %d edges, want 1,0", g.NumNodes(), g.NumEdges())
	}
}

func TestBipartite(t *testing.T) {
	g, err := Bipartite(2, 3)
	if err != nil {
		t.Fatalf("Bipartite: %v", err)
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
	if g.NumEdges() != 2*2*3 {
		t.Fatalf("NumEdges = %d, want 12", g.NumEdges())
	}
	// No edge within a side.
	if g.HasEdge(0, 1) || g.HasEdge(2, 3) {
		t.Fatal("edge within one side of the bipartition")
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Fatal("missing cross edge")
	}
}

func TestRing(t *testing.T) {
	g, err := Ring(5)
	if err != nil {
		t.Fatalf("Ring: %v", err)
	}
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5", g.NumEdges())
	}
	if g.IsDAG() {
		t.Fatal("ring should be cyclic")
	}
	if _, err := Ring(2); err == nil {
		t.Fatal("Ring(2) accepted")
	}
}

func TestTwoLevelAggregation(t *testing.T) {
	g, err := TwoLevelAggregation(3, 9)
	if err != nil {
		t.Fatalf("TwoLevelAggregation: %v", err)
	}
	if g.NumNodes() != 13 {
		t.Fatalf("NumNodes = %d, want 13", g.NumNodes())
	}
	if g.InDegree(0) != 3 {
		t.Fatalf("root in-degree = %d, want 3", g.InDegree(0))
	}
	// Each aggregator gets 3 leaves.
	for m := 1; m <= 3; m++ {
		if g.InDegree(m) != 3 {
			t.Fatalf("aggregator %d in-degree = %d, want 3", m, g.InDegree(m))
		}
	}
	if !g.IsDAG() {
		t.Fatal("two-level aggregation is not a DAG")
	}
}

func TestCliqueAndRandomDAGSizes(t *testing.T) {
	g, err := Clique(4)
	if err != nil {
		t.Fatalf("Clique: %v", err)
	}
	if g.NumEdges() != 12 {
		t.Fatalf("clique edges = %d, want 12", g.NumEdges())
	}
	rng := rand.New(rand.NewSource(1))
	d, err := RandomDAG(10, 1.0, rng)
	if err != nil {
		t.Fatalf("RandomDAG: %v", err)
	}
	if d.NumEdges() != 45 {
		t.Fatalf("p=1 DAG edges = %d, want 45", d.NumEdges())
	}
}
