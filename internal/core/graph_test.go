package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewGraphEmpty(t *testing.T) {
	g := NewGraph(5)
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAddEdge(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge(0,1): %v", err)
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("HasEdge(0,1) = false after AddEdge")
	}
	if g.HasEdge(1, 0) {
		t.Fatal("HasEdge(1,0) = true; edges are directed")
	}
	if g.OutDegree(0) != 1 || g.InDegree(1) != 1 {
		t.Fatalf("degrees: out(0)=%d in(1)=%d, want 1,1", g.OutDegree(0), g.InDegree(1))
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(-1, 1); err == nil {
		t.Fatal("negative endpoint accepted")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge(0,1): %v", err)
	}
	if err := g.AddEdge(0, 1); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

func TestAddBiEdge(t *testing.T) {
	g := NewGraph(2)
	if err := g.AddBiEdge(0, 1); err != nil {
		t.Fatalf("AddBiEdge: %v", err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("AddBiEdge did not add both directions")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestClone(t *testing.T) {
	g := NewGraph(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	c := g.Clone()
	mustEdge(t, c, 2, 3)
	if g.HasEdge(2, 3) {
		t.Fatal("mutating clone affected original")
	}
	if c.NumEdges() != 3 || g.NumEdges() != 2 {
		t.Fatalf("edge counts: clone %d orig %d, want 3,2", c.NumEdges(), g.NumEdges())
	}
}

func TestTopoOrderDAG(t *testing.T) {
	g := NewGraph(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 3)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	pos := make(map[NodeID]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("edge (%d,%d) violates topo order %v", e.From, e.To, order)
		}
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := NewGraph(3)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 0)
	if _, err := g.TopoOrder(); err != ErrCyclic {
		t.Fatalf("TopoOrder on cycle: err = %v, want ErrCyclic", err)
	}
	if g.IsDAG() {
		t.Fatal("IsDAG = true for a cycle")
	}
}

func TestTopoOrderIsolatedNodes(t *testing.T) {
	g := NewGraph(3) // no edges at all
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	if len(order) != 3 {
		t.Fatalf("order covers %d nodes, want 3", len(order))
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := NewGraph(3)
	mustEdge(t, g, 0, 1)
	g.out[0] = append(g.out[0], 2) // corrupt adjacency without edge set
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted corrupted adjacency")
	}
}

// Property: a random DAG always topologically sorts, and every edge respects
// the order.
func TestRandomDAGProperty(t *testing.T) {
	f := func(seed int64, rawN uint8, rawP uint8) bool {
		n := int(rawN%30) + 1
		p := float64(rawP) / 255
		rng := rand.New(rand.NewSource(seed))
		g, err := RandomDAG(n, p, rng)
		if err != nil {
			return false
		}
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func mustEdge(t *testing.T, g *Graph, from, to NodeID) {
	t.Helper()
	if err := g.AddEdge(from, to); err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", from, to, err)
	}
}

func TestIncidenceCaches(t *testing.T) {
	g := NewGraph(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	// Edge ids follow insertion order: 0:(0,1) 1:(1,2) 2:(2,0) 3:(0,3).
	wantIncident := map[int][]int32{0: {0, 2, 3}, 1: {0, 1}, 2: {1, 2}, 3: {3}}
	for v, want := range wantIncident {
		got := g.IncidentEdgeIDs(v)
		if len(got) != len(want) {
			t.Fatalf("IncidentEdgeIDs(%d) = %v, want %v", v, got, want)
		}
		seen := map[int32]bool{}
		for _, k := range got {
			seen[k] = true
		}
		for _, k := range want {
			if !seen[k] {
				t.Fatalf("IncidentEdgeIDs(%d) = %v, missing edge %d", v, got, k)
			}
		}
	}
	if got := g.InEdgeIDs(0); len(got) != 1 || got[0] != 2 {
		t.Fatalf("InEdgeIDs(0) = %v, want [2]", got)
	}
	// AddEdge must invalidate the caches.
	if err := g.AddEdge(3, 1); err != nil {
		t.Fatal(err)
	}
	if got := g.InEdgeIDs(1); len(got) != 2 {
		t.Fatalf("InEdgeIDs(1) after AddEdge = %v, want two edges", got)
	}
}

func TestEdgeWeightByIndex(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if w := g.EdgeWeight(0); w != 1 {
		t.Fatalf("EdgeWeight(0) = %g, want 1 (unweighted)", w)
	}
	if err := g.SetWeight(1, 2, 2.5); err != nil {
		t.Fatal(err)
	}
	if w := g.EdgeWeight(1); w != 2.5 {
		t.Fatalf("EdgeWeight(1) = %g, want 2.5", w)
	}
	if w := g.EdgeWeight(0); w != 1 {
		t.Fatalf("EdgeWeight(0) = %g, want 1", w)
	}
}

// EnsureIncidence must be safe under concurrent first use: the serving
// layer submits many jobs sharing one finished graph from multiple
// goroutines. Run under -race.
func TestEnsureIncidenceConcurrent(t *testing.T) {
	g, err := Mesh2D(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := 0; v < g.NumNodes(); v++ {
				if len(g.IncidentEdgeIDs(v)) == 0 {
					t.Errorf("node %d reports no incident edges", v)
					return
				}
			}
		}()
	}
	wg.Wait()
	// A later AddEdge invalidates and rebuilds on next use.
	if err := g.AddEdge(0, 7); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range g.IncidentEdgeIDs(7) {
		e := g.Edges()[k]
		if e.From == 0 && e.To == 7 {
			found = true
		}
	}
	if !found {
		t.Fatal("incidence cache not rebuilt after AddEdge")
	}
}
