package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cloudia/internal/core"
)

// collect re-opens dir and returns every replayed record.
func collect(t *testing.T, dir string, opts Options) ([]Record, *Log) {
	t.Helper()
	var recs []Record
	l, err := Open(dir, opts, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return recs, l
}

func testEpoch(epoch, n int, seed int64) *EpochRecord {
	rng := rand.New(rand.NewSource(seed))
	rows := []RowDelta{}
	for i := 0; i < n; i += 2 {
		vals := make([]float64, n)
		for j := range vals {
			if j != i {
				vals[j] = rng.Float64()
			}
		}
		rows = append(rows, RowDelta{Row: i, Values: vals})
	}
	return &EpochRecord{Epoch: epoch, Fingerprint: core.Fingerprint(seed + 1), N: n, Rows: rows}
}

func testAdvice(epoch int) *AdviceRecord {
	return &AdviceRecord{
		Epoch:       epoch,
		Fingerprint: 0xfeed,
		SolverName:  "cp",
		ClusterK:    20,
		Objective:   "longest-link",
		Winner:      "CP",
		Cost:        1.25,
		Deployment:  []int{3, 1, 4, 0},
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewCostMatrix(3)
	m.Set(0, 1, 0.5)
	m.Set(2, 0, 1.5)
	want := []Record{
		testEpoch(1, 4, 7),
		testAdvice(1),
		&SnapshotRecord{Epoch: 2, Fingerprint: 9, Matrix: m, Advice: testAdvice(2)},
		&SnapshotRecord{Epoch: 3, Fingerprint: 10, Matrix: m},
		&EpochRecord{Epoch: 4, Fingerprint: 11, N: 2}, // no changed rows
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, l2 := collect(t, dir, Options{})
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		// The codec leaves nil and empty slices indistinguishable; normalize.
		if we, ok := w.(*EpochRecord); ok && we.Rows == nil {
			we.Rows = []RowDelta{}
			g.(*EpochRecord).Rows = append([]RowDelta{}, g.(*EpochRecord).Rows...)
		}
		if !reflect.DeepEqual(w, g) {
			t.Errorf("record %d: got %+v want %+v", i, g, w)
		}
	}
	if st := l2.Stats(); st.RecoveredRecords != int64(len(want)) {
		t.Errorf("RecoveredRecords = %d, want %d", st.RecoveredRecords, len(want))
	}
}

func TestAppendAfterReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testAdvice(1)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, l2 := collect(t, dir, Options{})
	if err := l2.Append(testAdvice(2)); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	recs, l3 := collect(t, dir, Options{})
	defer l3.Close()
	if len(recs) != 2 || recs[1].(*AdviceRecord).Epoch != 2 {
		t.Fatalf("got %d records, want the reopened append as record 2", len(recs))
	}
}

func TestRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 1; i <= n; i++ {
		if err := l.Append(testAdvice(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Rotations == 0 {
		t.Fatal("no rotations under a 256-byte segment cap")
	}
	if st.Segments < 2 {
		t.Fatalf("Segments = %d, want several", st.Segments)
	}
	l.Close()

	recs, l2 := collect(t, dir, Options{SegmentBytes: 256})
	defer l2.Close()
	if len(recs) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.(*AdviceRecord).Epoch != i+1 {
			t.Fatalf("record %d out of order: epoch %d", i, r.(*AdviceRecord).Epoch)
		}
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := l.Append(testAdvice(i)); err != nil {
			t.Fatal(err)
		}
	}
	m := core.NewCostMatrix(2)
	m.Set(0, 1, 3)
	m.Set(1, 0, 4)
	if err := l.Compact(&SnapshotRecord{Epoch: 10, Fingerprint: 77, Matrix: m, Advice: testAdvice(10)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testAdvice(11)); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Compactions != 1 || st.Segments != 1 {
		t.Fatalf("after compaction: %+v", st)
	}
	l.Close()

	recs, l2 := collect(t, dir, Options{})
	defer l2.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records after compaction, want snapshot + 1", len(recs))
	}
	snap, ok := recs[0].(*SnapshotRecord)
	if !ok || snap.Fingerprint != 77 || snap.Matrix.At(1, 0) != 4 || snap.Advice == nil {
		t.Fatalf("first replayed record is not the snapshot: %+v", recs[0])
	}
	if recs[1].(*AdviceRecord).Epoch != 11 {
		t.Fatalf("post-compaction record lost: %+v", recs[1])
	}
}

func TestCompactClosedAndNil(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{}, nil)
	if err := l.Compact(nil); err == nil {
		t.Fatal("Compact(nil) succeeded")
	}
	l.Close()
	if err := l.Append(testAdvice(1)); err == nil {
		t.Fatal("Append on closed log succeeded")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("Sync on closed log succeeded")
	}
	if err := l.Compact(&SnapshotRecord{Matrix: core.NewCostMatrix(1)}); err == nil {
		t.Fatal("Compact on closed log succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// lastSegment returns the path of the newest segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := ""
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			last = e.Name()
		}
	}
	if last == "" {
		t.Fatal("no segments")
	}
	return filepath.Join(dir, last)
}

func writeLog(t *testing.T, dir string, n int, opts Options) {
	t.Helper()
	l, err := Open(dir, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if err := l.Append(testAdvice(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 5, Options{})

	// Flip one byte inside the final frame's body.
	path := lastSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, l := collect(t, dir, Options{})
	if len(recs) != 4 {
		t.Fatalf("replayed %d records past a corrupt tail, want 4", len(recs))
	}
	if st := l.Stats(); st.TruncatedBytes == 0 {
		t.Fatal("TruncatedBytes = 0 after tail truncation")
	}
	// The log must keep working where the truncation left it.
	if err := l.Append(testAdvice(99)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	recs2, l2 := collect(t, dir, Options{})
	defer l2.Close()
	if len(recs2) != 5 || recs2[4].(*AdviceRecord).Epoch != 99 {
		t.Fatalf("post-truncation append not replayed: %d records", len(recs2))
	}
}

func TestTruncatedSegmentTail(t *testing.T) {
	for _, cut := range []int{1, 3, 9} { // mid-header, mid-header, mid-body
		dir := t.TempDir()
		writeLog(t, dir, 3, Options{})
		path := lastSegment(t, dir)
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, fi.Size()-int64(cut)); err != nil {
			t.Fatal(err)
		}
		recs, l := collect(t, dir, Options{})
		l.Close()
		if len(recs) != 2 {
			t.Fatalf("cut %d: replayed %d records, want 2", cut, len(recs))
		}
	}
}

func TestCorruptionBeforeTailLosesSuffix(t *testing.T) {
	// A corrupt frame in the MIDDLE of the final segment truncates there:
	// later frames — even valid ones — are unreachable, because frame
	// boundaries downstream of a bad length field cannot be trusted.
	dir := t.TempDir()
	writeLog(t, dir, 4, Options{})
	path := lastSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[9] ^= 0x40 // inside record 1's body
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, l := collect(t, dir, Options{})
	defer l.Close()
	if len(recs) != 0 {
		t.Fatalf("replayed %d records after mid-segment corruption, want 0", len(recs))
	}
}

func TestCorruptEarlierSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 30, Options{SegmentBytes: 256}) // several segments
	// Corrupt the FIRST segment: not the tail, so recovery must refuse.
	entries, _ := os.ReadDir(dir)
	first := ""
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			first = filepath.Join(dir, e.Name())
			break
		}
	}
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}, nil); err == nil {
		t.Fatal("Open succeeded over a corrupt non-final segment")
	} else if !strings.Contains(err.Error(), "before the tail") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestUnknownRecordKindIsCorruption(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 2, Options{})
	// Append a CRC-valid frame with an unknown kind by hand.
	l, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.buf = l.buf[:0]
	frame, _ := l.frame(testAdvice(3))
	bad := append([]byte(nil), frame...)
	bad[8] = 99 // kind byte
	// Recompute the CRC so only the kind is wrong.
	body := bad[frameHeaderBytes:]
	putCRC(bad, body)
	if _, err := l.f.Write(bad); err != nil {
		t.Fatal(err)
	}
	l.f.Sync()
	l.f.Close()

	recs, l2 := collect(t, dir, Options{})
	defer l2.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want the 2 before the alien frame", len(recs))
	}
}

func TestReplayErrorAborts(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir, 3, Options{})
	boom := errors.New("boom")
	_, err := Open(dir, Options{}, func(Record) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Open error = %v, want the replay error", err)
	}
}

func TestSyncPolicies(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncBatch, BatchAppends: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := l.Append(testAdvice(i + 1)); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Syncs != 2 {
		t.Fatalf("SyncBatch(4) after 8 appends: %d syncs, want 2", st.Syncs)
	}
	l.Close()

	dir2 := t.TempDir()
	l2, err := Open(dir2, Options{Sync: SyncNone}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := l2.Append(testAdvice(i + 1)); err != nil {
			t.Fatal(err)
		}
	}
	if st := l2.Stats(); st.Syncs != 0 {
		t.Fatalf("SyncNone: %d syncs during appends", st.Syncs)
	}
	if err := l2.Sync(); err != nil { // explicit sync still works
		t.Fatal(err)
	}
	l2.Close()
	recs, l3 := collect(t, dir2, Options{})
	defer l3.Close()
	if len(recs) != 8 {
		t.Fatalf("SyncNone lost flushed records: %d of 8", len(recs))
	}
}

// errCrashTest is the sentinel the in-process crash hook panics with.
var errCrashTest = errors.New("injected crash")

// crashAt arms the crashpoint hook to die at the nth occurrence of name.
func crashAt(t *testing.T, name string, nth int) {
	t.Helper()
	seen := 0
	SetCrashpointHook(func(p string) {
		if p != name {
			return
		}
		seen++
		if seen == nth {
			panic(errCrashTest)
		}
	})
	t.Cleanup(func() { SetCrashpointHook(nil) })
}

// runToCrash runs f, which is expected to die at an armed crashpoint, and
// reports whether it did.
func runToCrash(f func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok && errors.Is(err, errCrashTest) {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	f()
	return false
}

func TestCrashpointDurability(t *testing.T) {
	// A crash before the sync point loses the in-flight record; a crash
	// after it keeps the record. Either way every previously acknowledged
	// record survives and the log reopens cleanly.
	cases := []struct {
		point string
		kept  int // records recovered after appending 3 and dying on the 3rd
	}{
		{"append.start", 2},
		{"append.framed", 2}, // buffered but unflushed dies with the process
		{"append.synced", 3},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			crashAt(t, tc.point, 3)
			crashed := runToCrash(func() {
				for i := 1; i <= 3; i++ {
					if err := l.Append(testAdvice(i)); err != nil {
						t.Fatal(err)
					}
				}
			})
			SetCrashpointHook(nil)
			if !crashed {
				t.Fatal("workload did not crash")
			}
			// Abandon l without Close — crash semantics — and reopen.
			recs, l2 := collect(t, dir, Options{})
			defer l2.Close()
			if len(recs) != tc.kept {
				t.Fatalf("recovered %d records, want %d", len(recs), tc.kept)
			}
		})
	}
}

func TestCrashpointCompaction(t *testing.T) {
	// Dying between "snapshot durable" and "old segments removed" must
	// recover to the same state as a completed compaction.
	for _, point := range []string{"compact.written", "compact.removed"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 4; i++ {
				if err := l.Append(testAdvice(i)); err != nil {
					t.Fatal(err)
				}
			}
			m := core.NewCostMatrix(2)
			m.Set(0, 1, 8)
			crashAt(t, point, 1)
			crashed := runToCrash(func() {
				if err := l.Compact(&SnapshotRecord{Epoch: 4, Fingerprint: 5, Matrix: m}); err != nil {
					t.Fatal(err)
				}
			})
			SetCrashpointHook(nil)
			if !crashed {
				t.Fatal("workload did not crash")
			}
			recs, l2 := collect(t, dir, Options{})
			defer l2.Close()
			// Replay semantics: a snapshot resets state, so whatever
			// prefix survives, the LAST record must be the snapshot.
			if len(recs) == 0 {
				t.Fatal("no records recovered")
			}
			last, ok := recs[len(recs)-1].(*SnapshotRecord)
			if !ok || last.Fingerprint != 5 {
				t.Fatalf("last recovered record is not the snapshot: %+v", recs[len(recs)-1])
			}
		})
	}
}

func TestOptionsValidationAndHelpers(t *testing.T) {
	if _, ok := segIndexOf("junk"); ok {
		t.Fatal("segIndexOf accepted junk")
	}
	if _, ok := segIndexOf("0000000x.seg"); ok {
		t.Fatal("segIndexOf accepted a non-numeric index")
	}
	if idx, ok := segIndexOf("00000042.seg"); !ok || idx != 42 {
		t.Fatalf("segIndexOf = %d,%v", idx, ok)
	}
	o := Options{}.withDefaults()
	if o.SegmentBytes != 1<<20 || o.BatchAppends != 16 || o.Sync != SyncAlways {
		t.Fatalf("defaults: %+v", o)
	}
	dir := t.TempDir()
	l, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Dir() != dir {
		t.Fatalf("Dir() = %q", l.Dir())
	}
}

func TestDecodeMalformedPayloads(t *testing.T) {
	// CRC-valid frames with malformed payloads must be rejected by the
	// decoder, not crash it.
	cases := [][]byte{
		{},     // empty epoch payload
		{0x01}, // epoch, fingerprint missing
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, // uvarint overflow
	}
	for i, payload := range cases {
		if _, err := decodeRecord(kindEpoch, payload); err == nil {
			t.Errorf("case %d: epoch decode succeeded on malformed payload", i)
		}
		if _, err := decodeRecord(kindAdvice, payload); err == nil {
			t.Errorf("case %d: advice decode succeeded on malformed payload", i)
		}
		if _, err := decodeRecord(kindSnapshot, payload); err == nil {
			t.Errorf("case %d: snapshot decode succeeded on malformed payload", i)
		}
	}
	// An advice count that cannot fit the remaining bytes.
	adv := (&AdviceRecord{Deployment: []int{1, 2, 3}}).appendPayload(nil)
	adv = adv[:len(adv)-2] // drop deployment bytes, keep the count
	if _, err := decodeRecord(kindAdvice, adv); err == nil {
		t.Error("advice decode succeeded with a short deployment")
	}
	// An epoch claiming more changed rows than the matrix has.
	ep := (&EpochRecord{Epoch: 1, Fingerprint: 2, N: 1, Rows: []RowDelta{{Row: 0, Values: []float64{0}}}}).appendPayload(nil)
	ep[10]++ // bump the row count past N (layout: epoch, fp, n, rows)
	if _, err := decodeRecord(kindEpoch, ep); err == nil {
		t.Error("epoch decode succeeded with rows > N")
	}
}

// putCRC rewrites a frame's CRC field to match its (possibly doctored) body.
func putCRC(frame, body []byte) {
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(body, castagnoli))
}

func TestOpenOverFileFails(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(path, "wal"), Options{}, nil); err == nil {
		t.Fatal("Open under a regular file succeeded")
	}
	if _, err := Open(path, Options{}, nil); err == nil {
		t.Fatal("Open on a regular file succeeded")
	}
}

func TestWriteErrorsSurface(t *testing.T) {
	// Closing the file out from under the log turns the next flush into an
	// I/O error; every write-path entry point must surface it, not panic.
	newBroken := func(t *testing.T, opts Options) *Log {
		l, err := Open(t.TempDir(), opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		l.f.Close()
		return l
	}
	t.Run("append", func(t *testing.T) {
		l := newBroken(t, Options{})
		if err := l.Append(testAdvice(1)); err == nil {
			t.Fatal("Append over a closed file succeeded")
		}
	})
	t.Run("sync", func(t *testing.T) {
		l := newBroken(t, Options{Sync: SyncNone})
		if err := l.Append(testAdvice(1)); err != nil {
			t.Fatal(err) // buffered, no flush yet
		}
		if err := l.Sync(); err == nil {
			t.Fatal("Sync over a closed file succeeded")
		}
	})
	t.Run("rotate", func(t *testing.T) {
		l := newBroken(t, Options{Sync: SyncNone, SegmentBytes: 8})
		if err := l.Append(testAdvice(1)); err == nil {
			t.Fatal("rotation over a closed file succeeded")
		}
	})
	t.Run("compact", func(t *testing.T) {
		l := newBroken(t, Options{})
		if err := l.Compact(&SnapshotRecord{Matrix: core.NewCostMatrix(1)}); err == nil {
			t.Fatal("Compact over a closed file succeeded")
		}
	})
	t.Run("close", func(t *testing.T) {
		l := newBroken(t, Options{})
		if err := l.Close(); err == nil {
			t.Fatal("Close over a closed file succeeded")
		}
	})
}

func TestRotateBlockedByExistingSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNone, SegmentBytes: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Squat on the next segment name so createSegment's O_EXCL fails.
	if err := os.WriteFile(filepath.Join(dir, segName(2)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testAdvice(1)); err == nil {
		t.Fatal("rotation into an occupied segment name succeeded")
	}
}

func TestParseFrameRejectsBadLengths(t *testing.T) {
	zero := make([]byte, frameHeaderBytes) // length 0
	if _, _, err := parseFrame(zero); err == nil {
		t.Fatal("length 0 accepted")
	}
	huge := make([]byte, frameHeaderBytes)
	binary.LittleEndian.PutUint32(huge, maxFrameBytes+1)
	if _, _, err := parseFrame(huge); err == nil {
		t.Fatal("over-cap length accepted")
	}
}

func TestDecodeEdgeCases(t *testing.T) {
	if _, err := decodeRecord(99, nil); err == nil {
		t.Fatal("unknown kind decoded")
	}
	// Negative ClusterK canonicalizes to 0 on encode.
	adv := testAdvice(1)
	adv.ClusterK = -5
	rt, err := decodeRecord(kindAdvice, adv.appendPayload(nil))
	if err != nil {
		t.Fatal(err)
	}
	if rt.(*AdviceRecord).ClusterK != 0 {
		t.Fatalf("ClusterK = %d, want 0", rt.(*AdviceRecord).ClusterK)
	}
	// Trailing bytes after a valid payload.
	ep := testEpoch(1, 2, 3).appendPayload(nil)
	if _, err := decodeRecord(kindEpoch, append(ep, 0xaa)); err == nil {
		t.Fatal("trailing epoch bytes accepted")
	}
	if _, err := decodeRecord(kindAdvice, append(testAdvice(1).appendPayload(nil), 0xaa)); err == nil {
		t.Fatal("trailing advice bytes accepted")
	}
	// A string length running past the payload.
	short := (&AdviceRecord{SolverName: "a-long-solver-name"}).appendPayload(nil)
	if _, err := decodeRecord(kindAdvice, short[:12]); err == nil {
		t.Fatal("truncated string accepted")
	}
	// Snapshot with a bad advice marker.
	snap := (&SnapshotRecord{Matrix: core.NewCostMatrix(1)}).appendPayload(nil)
	snap[len(snap)-1] = 7
	if _, err := decodeRecord(kindSnapshot, snap); err == nil {
		t.Fatal("snapshot advice marker 7 accepted")
	}
	// Snapshot with trailing bytes after an embedded advice.
	withAdv := (&SnapshotRecord{Matrix: core.NewCostMatrix(1), Advice: testAdvice(1)}).appendPayload(nil)
	if _, err := decodeRecord(kindSnapshot, append(withAdv, 0xaa)); err == nil {
		t.Fatal("trailing snapshot bytes accepted")
	}
}

// TestTailRoundTrip: epoch records carrying a tail section, advice records
// carrying a metric, and snapshot records carrying the tail matrix must all
// survive the codec byte-for-byte; records without tails must decode with
// the tail fields untouched.
func TestTailRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewCostMatrix(3)
	m.Set(0, 1, 0.5)
	tail := core.NewCostMatrix(3)
	tail.Set(0, 1, 0.9)
	tail.Set(1, 2, 2.25)
	adv := testAdvice(2)
	adv.Metric = "p99"
	want := []Record{
		// A tail section rides the same record as the mean rows.
		&EpochRecord{
			Epoch: 1, Fingerprint: 5, N: 3,
			Rows:            []RowDelta{{Row: 0, Values: []float64{0, 1, 2}}},
			TailPct:         99,
			TailFingerprint: 6,
			TailRows:        []RowDelta{{Row: 0, Values: []float64{0, 1.5, 3}}, {Row: 2, Values: []float64{4, 5, 0}}},
		},
		// A tail-less epoch after a tailed one: the zero marker, not a
		// stale section.
		testEpoch(2, 3, 21),
		adv,
		&SnapshotRecord{
			Epoch: 3, Fingerprint: 7, Matrix: m,
			Tail: tail, TailPct: 99, TailFingerprint: 8,
			Advice: adv,
		},
		&SnapshotRecord{Epoch: 4, Fingerprint: 9, Matrix: m},
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, l2 := collect(t, dir, Options{})
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Errorf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestTailDecodeRejections: a tail section claiming percentile 0 is
// indistinguishable from "no tail" on the daemon side, so the codec must
// refuse it, along with tail sections cut short.
func TestTailDecodeRejections(t *testing.T) {
	tailEpoch := &EpochRecord{
		Epoch: 1, Fingerprint: 1, N: 2,
		TailPct: 95, TailFingerprint: 2,
		TailRows: []RowDelta{{Row: 1, Values: []float64{3, 0}}},
	}
	good := tailEpoch.appendPayload(nil)
	// The encoder can't emit a marker-1 section with percentile 0 (the
	// marker is keyed on TailPct), so corrupt the pct bytes by hand: the
	// tail section is marker(1) + pct(8) + fp(8) + count(1) + row(1+2*8).
	zeroPct := append([]byte(nil), good...)
	for i := len(zeroPct) - 34; i < len(zeroPct)-26; i++ {
		zeroPct[i] = 0
	}
	if _, err := decodeRecord(kindEpoch, zeroPct); err == nil {
		t.Fatal("epoch tail section with percentile 0 accepted")
	}
	if _, err := decodeRecord(kindEpoch, good); err != nil {
		t.Fatalf("valid tailed epoch rejected: %v", err)
	}
	if _, err := decodeRecord(kindEpoch, good[:len(good)-4]); err == nil {
		t.Fatal("truncated epoch tail section accepted")
	}
	if _, err := decodeRecord(kindEpoch, append(good, 0xaa)); err == nil {
		t.Fatal("trailing bytes after a tailed epoch accepted")
	}

	tail := core.NewCostMatrix(2)
	tail.Set(0, 1, 1.5)
	snap := &SnapshotRecord{
		Epoch: 1, Fingerprint: 1, Matrix: core.NewCostMatrix(2),
		Tail: tail, TailPct: 99, TailFingerprint: 3,
	}
	goodSnap := snap.appendPayload(nil)
	// Tail section layout: marker(1) + pct(8) + fp(8) + 2*2 f64 cells (32).
	zeroSnap := append([]byte(nil), goodSnap...)
	for i := len(zeroSnap) - 48; i < len(zeroSnap)-40; i++ {
		zeroSnap[i] = 0
	}
	if _, err := decodeRecord(kindSnapshot, zeroSnap); err == nil {
		t.Fatal("snapshot tail section with percentile 0 accepted")
	}
	if _, err := decodeRecord(kindSnapshot, goodSnap); err != nil {
		t.Fatalf("valid tailed snapshot rejected: %v", err)
	}
	if _, err := decodeRecord(kindSnapshot, goodSnap[:len(goodSnap)-4]); err == nil {
		t.Fatal("truncated snapshot tail section accepted")
	}
	if _, err := decodeRecord(kindSnapshot, append(goodSnap, 0xaa)); err == nil {
		t.Fatal("trailing bytes after a tailed snapshot accepted")
	}
}
