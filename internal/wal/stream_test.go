package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"testing"
)

// frameBytes encodes rec into a standalone frame.
func frameBytes(t *testing.T, rec Record) []byte {
	t.Helper()
	l := &Log{}
	f, err := l.frame(rec)
	if err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), f...)
}

// TestReadFrameMatchesParseFrame pins the streaming reader to the
// whole-buffer parser it replaced on the replay path: same records, same
// frame lengths, and rejection of the same malformed inputs — so torn-tail
// truncation decisions are unchanged by the buffer-reusing rewrite.
func TestReadFrameMatchesParseFrame(t *testing.T) {
	recs := []Record{
		&EpochRecord{Epoch: 1, Fingerprint: 7, N: 3, Rows: []RowDelta{
			{Row: 0, Values: []float64{0, 1, 2}},
			{Row: 2, Values: []float64{3, 4, 0}},
		}},
		testAdvice(1),
	}
	var buf []byte
	for _, r := range recs {
		buf = append(buf, frameBytes(t, r)...)
	}

	// Whole-buffer parse.
	var parsed []Record
	off := 0
	for off < len(buf) {
		rec, n, err := parseFrame(buf[off:])
		if err != nil {
			t.Fatal(err)
		}
		parsed = append(parsed, rec)
		off += n
	}

	// Streaming parse through the reusable scratch buffer.
	l := &Log{}
	r := bufio.NewReader(bytes.NewReader(buf))
	var streamed []Record
	remain := int64(len(buf))
	for remain > 0 {
		rec, n, err := l.readFrame(r, remain)
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, rec)
		remain -= int64(n)
	}

	if !reflect.DeepEqual(parsed, streamed) {
		t.Fatalf("streaming parse diverges from parseFrame:\nparse:  %+v\nstream: %+v", parsed, streamed)
	}
}

// TestReadFrameRejectsWhatParseFrameRejects drives both decoders through
// every framing violation class and requires both to fail.
func TestReadFrameRejectsWhatParseFrameRejects(t *testing.T) {
	good := frameBytes(t, testAdvice(2))
	cases := map[string][]byte{
		"short header":   good[:frameHeaderBytes-2],
		"truncated body": good[:len(good)-3],
		"zero length":    make([]byte, frameHeaderBytes),
		"crc mismatch": func() []byte {
			b := append([]byte(nil), good...)
			b[len(b)-1] ^= 0xff
			return b
		}(),
		"over-cap length": func() []byte {
			b := make([]byte, frameHeaderBytes)
			binary.LittleEndian.PutUint32(b, maxFrameBytes+1)
			return b
		}(),
		"bad payload": func() []byte {
			// A CRC-valid frame whose body decodes to no known record kind.
			body := []byte{99, 1, 2, 3}
			b := make([]byte, frameHeaderBytes)
			binary.LittleEndian.PutUint32(b, uint32(len(body)))
			binary.LittleEndian.PutUint32(b[4:], crc32.Checksum(body, castagnoli))
			return append(b, body...)
		}(),
	}
	for name, data := range cases {
		if _, _, err := parseFrame(data); err == nil {
			t.Errorf("%s: parseFrame accepted it", name)
		}
		l := &Log{}
		if _, _, err := l.readFrame(bufio.NewReader(bytes.NewReader(data)), int64(len(data))); err == nil {
			t.Errorf("%s: readFrame accepted it", name)
		}
	}
}

// TestEpochDecodeRejectsOversizedRowClaim: a CRC-valid epoch payload whose
// row count cannot fit in the remaining bytes must fail before the decoder
// allocates rows*N values for it.
func TestEpochDecodeRejectsOversizedRowClaim(t *testing.T) {
	r := &EpochRecord{Epoch: 1, Fingerprint: 1, N: 4, Rows: []RowDelta{
		{Row: 0, Values: []float64{0, 1, 2, 3}},
	}}
	payload := r.appendPayload(nil)
	// Claim 3 rows (still <= N) but keep one row's bytes.
	p2 := append([]byte(nil), payload...)
	// Payload layout: uvarint epoch, 8-byte fingerprint, uvarint N,
	// uvarint rowcount; all the uvarints here are single-byte.
	p2[1+8+1] = 3
	if _, err := decodeRecord(kindEpoch, p2); err == nil {
		t.Fatal("row claim exceeding the payload accepted")
	}
	// And a claim beyond N keeps its own guard.
	p3 := append([]byte(nil), payload...)
	p3[1+8+1] = 5
	if _, err := decodeRecord(kindEpoch, p3); err == nil {
		t.Fatal("row claim exceeding N accepted")
	}
}
