package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"cloudia/internal/core"
)

// This file defines the WAL's record types and their binary payload codec.
// Records are the durability unit of the serve daemon: every tenant state
// transition — a matrix epoch delta, an emitted advice, a compaction
// snapshot — is one record, framed (see wal.go) and appended to the
// tenant's log. The encoding is a fixed little-endian layout with uvarint
// integers: deterministic byte-for-byte for equal records, no reflection,
// no allocation beyond the output buffer, and append-friendly in the
// sequential-write sense of the SSD literature the on-disk layout follows —
// a record is produced once, written once, and never rewritten in place.

// Record kinds, the first byte of every frame body.
const (
	kindEpoch    byte = 1
	kindAdvice   byte = 2
	kindSnapshot byte = 3
)

// Record is one durable log entry. The concrete types are EpochRecord,
// AdviceRecord, and SnapshotRecord.
type Record interface {
	kind() byte
	appendPayload(buf []byte) []byte
}

// RowDelta carries one changed cost-matrix row: the row index and its full
// post-change contents. Replaying a delta is Set(row, j, Values[j]) for
// every column, so a sequence of deltas rebuilds the matrix bit-for-bit.
type RowDelta struct {
	Row    int
	Values []float64
}

// EpochRecord logs one matrix epoch: the rows that changed (with their new
// contents) and the fingerprint the rebuilt matrix must hash to. Recovery
// applies the rows and then verifies the fingerprint bit-for-bit — a
// mismatch means the log and the replay logic disagree about the matrix
// content, which must fail recovery rather than silently serve advice
// computed over a different matrix than the one acknowledged.
type EpochRecord struct {
	// Epoch numbers the tenant's epochs from 1 in append order; it keeps
	// increasing across compactions and restarts.
	Epoch int
	// Fingerprint is the content hash of the full matrix after this
	// epoch's rows are applied.
	Fingerprint core.Fingerprint
	// N is the matrix size; every epoch of one tenant carries the same N.
	N int
	// Rows are the changed rows in ascending index order.
	Rows []RowDelta
	// TailPct, TailFingerprint, and TailRows carry the epoch's percentile
	// (tail) matrix delta when the tenant posts one alongside the mean:
	// the percentile the matrix estimates, the content hash of the full
	// tail matrix after TailRows are applied, and the changed tail rows in
	// ascending index order. TailPct == 0 means the epoch carries no tail
	// section; replay then leaves the tenant's tail matrix untouched.
	TailPct         float64
	TailFingerprint core.Fingerprint
	TailRows        []RowDelta
}

// AdviceRecord logs one emitted advice: the deployment served to the
// tenant, the configuration that produced it, and the fingerprint of the
// matrix it was computed under. Recovery restores the newest advice as the
// tenant's warm-start incumbent, and its solver configuration drives the
// content-addressed cache re-seed.
type AdviceRecord struct {
	// Epoch is the tenant epoch the advice was computed at.
	Epoch int
	// Fingerprint identifies the matrix content the advice was priced on.
	Fingerprint core.Fingerprint
	// SolverName, ClusterK, Objective, and Metric echo the advise request.
	// Metric records which cost summary the search ran on ("mean", "p95",
	// "p99", ...); recovery uses it to re-seed the artifact cache under the
	// matrix the next same-metric advise will actually search.
	SolverName string
	ClusterK   int
	Objective  string
	Metric     string
	// Winner names the portfolio member that produced the deployment.
	Winner string
	// Cost is the deployment cost under the fingerprinted matrix.
	Cost float64
	// Deployment is the served plan, node index to instance index.
	Deployment []int
}

// SnapshotRecord is a compaction point: the tenant's full state at one
// epoch. Replay resets to it, so every record before a snapshot is dead
// weight that Compact removes.
type SnapshotRecord struct {
	Epoch       int
	Fingerprint core.Fingerprint
	// Matrix is the full cost matrix at the snapshot epoch.
	Matrix *core.CostMatrix
	// Advice is the newest advice at the snapshot, nil when the tenant was
	// never advised.
	Advice *AdviceRecord
	// Tail, TailPct, and TailFingerprint are the tenant's full percentile
	// matrix at the snapshot epoch, for tenants that post tail rows. Tail
	// nil (and TailPct 0) means the tenant carries no tail state.
	Tail            *core.CostMatrix
	TailPct         float64
	TailFingerprint core.Fingerprint
}

func (*EpochRecord) kind() byte    { return kindEpoch }
func (*AdviceRecord) kind() byte   { return kindAdvice }
func (*SnapshotRecord) kind() byte { return kindSnapshot }

// appendUint appends v as a uvarint.
func appendUint(buf []byte, v int) []byte {
	return binary.AppendUvarint(buf, uint64(v))
}

// appendF64 appends the raw little-endian bit pattern of v.
func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// appendString appends a uvarint length followed by the bytes.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func (r *EpochRecord) appendPayload(buf []byte) []byte {
	buf = appendUint(buf, r.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Fingerprint))
	buf = appendUint(buf, r.N)
	buf = appendUint(buf, len(r.Rows))
	for _, row := range r.Rows {
		buf = appendUint(buf, row.Row)
		for _, v := range row.Values {
			buf = appendF64(buf, v)
		}
	}
	if r.TailPct == 0 {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = appendF64(buf, r.TailPct)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.TailFingerprint))
	buf = appendUint(buf, len(r.TailRows))
	for _, row := range r.TailRows {
		buf = appendUint(buf, row.Row)
		for _, v := range row.Values {
			buf = appendF64(buf, v)
		}
	}
	return buf
}

func (r *AdviceRecord) appendPayload(buf []byte) []byte {
	buf = appendUint(buf, r.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Fingerprint))
	buf = appendString(buf, r.SolverName)
	k := r.ClusterK
	if k < 0 {
		k = 0 // every k <= 0 aliases the unclustered entry
	}
	buf = appendUint(buf, k)
	buf = appendString(buf, r.Objective)
	buf = appendString(buf, r.Metric)
	buf = appendString(buf, r.Winner)
	buf = appendF64(buf, r.Cost)
	buf = appendUint(buf, len(r.Deployment))
	for _, inst := range r.Deployment {
		buf = appendUint(buf, inst)
	}
	return buf
}

func (r *SnapshotRecord) appendPayload(buf []byte) []byte {
	buf = appendUint(buf, r.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Fingerprint))
	n := r.Matrix.Size()
	buf = appendUint(buf, n)
	for i := 0; i < n; i++ {
		for _, v := range r.Matrix.Row(i) {
			buf = appendF64(buf, v)
		}
	}
	if r.Advice == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		buf = r.Advice.appendPayload(buf)
	}
	if r.Tail == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = appendF64(buf, r.TailPct)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.TailFingerprint))
	for i := 0; i < n; i++ {
		for _, v := range r.Tail.Row(i) {
			buf = appendF64(buf, v)
		}
	}
	return buf
}

// payloadReader decodes a record payload, tracking one sticky error so call
// sites stay linear.
type payloadReader struct {
	b   []byte
	err error
}

func (p *payloadReader) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf(format, args...)
	}
}

func (p *payloadReader) uint() int {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.b)
	if n <= 0 || v > math.MaxInt32 {
		p.fail("wal: malformed uvarint")
		return 0
	}
	p.b = p.b[n:]
	return int(v)
}

func (p *payloadReader) u64() uint64 {
	if p.err != nil {
		return 0
	}
	if len(p.b) < 8 {
		p.fail("wal: truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(p.b)
	p.b = p.b[8:]
	return v
}

func (p *payloadReader) f64() float64 { return math.Float64frombits(p.u64()) }

// marker reads a one-byte 0/1 presence marker.
func (p *payloadReader) marker(what string) byte {
	if p.err != nil {
		return 0
	}
	if len(p.b) < 1 {
		p.fail("wal: truncated %s marker", what)
		return 0
	}
	m := p.b[0]
	p.b = p.b[1:]
	if m > 1 {
		p.fail("wal: %s marker %d", what, m)
		return 0
	}
	return m
}

// rowDeltas reads count row deltas of n values each, with the same
// cannot-possibly-fit guard the epoch decoder always applied: each delta is
// at least one index byte plus n fixed-width values.
func (p *payloadReader) rowDeltas(count, n int) []RowDelta {
	if p.err != nil {
		return nil
	}
	if count > n {
		p.fail("wal: epoch record claims %d changed rows of %d", count, n)
		return nil
	}
	if count*(n*8+1) > len(p.b) {
		p.fail("wal: epoch record claims %d rows of %d values in %d bytes", count, n, len(p.b))
		return nil
	}
	rows := make([]RowDelta, 0, count)
	// One flat backing array for all row values: replaying a large epoch
	// costs two allocations instead of one per row, and the full-capacity
	// subslices keep rows from ever growing into each other.
	flat := make([]float64, count*n)
	for i := 0; i < count && p.err == nil; i++ {
		d := RowDelta{Row: p.uint(), Values: flat[i*n : (i+1)*n : (i+1)*n]}
		for j := range d.Values {
			d.Values[j] = p.f64()
		}
		rows = append(rows, d)
	}
	return rows
}

func (p *payloadReader) str() string {
	n := p.uint()
	if p.err != nil {
		return ""
	}
	if len(p.b) < n {
		p.fail("wal: truncated string")
		return ""
	}
	s := string(p.b[:n])
	p.b = p.b[n:]
	return s
}

func (p *payloadReader) done() error {
	if p.err != nil {
		return p.err
	}
	if len(p.b) != 0 {
		return fmt.Errorf("wal: %d trailing payload bytes", len(p.b))
	}
	return nil
}

// decodeRecord parses one frame body (kind byte + payload) into its record.
// The caller has already verified the CRC, so any failure here is a format
// error, not a torn write.
func decodeRecord(kind byte, payload []byte) (Record, error) {
	p := &payloadReader{b: payload}
	switch kind {
	case kindEpoch:
		r := &EpochRecord{}
		r.Epoch = p.uint()
		r.Fingerprint = core.Fingerprint(p.u64())
		r.N = p.uint()
		r.Rows = p.rowDeltas(p.uint(), r.N)
		if p.marker("epoch tail") == 1 {
			r.TailPct = p.f64()
			r.TailFingerprint = core.Fingerprint(p.u64())
			r.TailRows = p.rowDeltas(p.uint(), r.N)
			if p.err == nil && r.TailPct == 0 {
				return nil, fmt.Errorf("wal: epoch tail section with percentile 0")
			}
		}
		if err := p.done(); err != nil {
			return nil, err
		}
		return r, nil
	case kindAdvice:
		r, rest, err := decodeAdvice(payload)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("wal: %d trailing payload bytes", len(rest))
		}
		return r, nil
	case kindSnapshot:
		r := &SnapshotRecord{}
		r.Epoch = p.uint()
		r.Fingerprint = core.Fingerprint(p.u64())
		n := p.uint()
		if p.err != nil {
			return nil, p.err
		}
		if need := n*n*8 + 1; len(p.b) < need {
			return nil, fmt.Errorf("wal: snapshot payload %d bytes short of %d", need-len(p.b), need)
		}
		r.Matrix = core.NewCostMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				r.Matrix.Set(i, j, p.f64())
			}
		}
		if p.marker("snapshot advice") == 1 {
			adv, rest, err := decodeAdvice(p.b)
			if err != nil {
				return nil, err
			}
			r.Advice = adv
			p.b = rest
		}
		if p.marker("snapshot tail") == 1 {
			r.TailPct = p.f64()
			r.TailFingerprint = core.Fingerprint(p.u64())
			if p.err == nil && len(p.b) < n*n*8 {
				return nil, fmt.Errorf("wal: snapshot tail payload %d bytes short of %d", n*n*8-len(p.b), n*n*8)
			}
			r.Tail = core.NewCostMatrix(n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					r.Tail.Set(i, j, p.f64())
				}
			}
			if p.err == nil && r.TailPct == 0 {
				return nil, fmt.Errorf("wal: snapshot tail section with percentile 0")
			}
		}
		if err := p.done(); err != nil {
			return nil, err
		}
		return r, nil
	}
	return nil, fmt.Errorf("wal: unknown record kind %d", kind)
}

// decodeAdvice parses an advice payload and returns the unconsumed rest, so
// snapshots can embed it as a suffix.
func decodeAdvice(payload []byte) (*AdviceRecord, []byte, error) {
	p := &payloadReader{b: payload}
	r := &AdviceRecord{}
	r.Epoch = p.uint()
	r.Fingerprint = core.Fingerprint(p.u64())
	r.SolverName = p.str()
	r.ClusterK = p.uint()
	r.Objective = p.str()
	r.Metric = p.str()
	r.Winner = p.str()
	r.Cost = p.f64()
	nodes := p.uint()
	if p.err != nil {
		return nil, nil, p.err
	}
	if nodes*1 > len(p.b) { // each entry is at least one byte
		return nil, nil, fmt.Errorf("wal: advice record claims %d deployment entries in %d bytes", nodes, len(p.b))
	}
	r.Deployment = make([]int, nodes)
	for i := range r.Deployment {
		r.Deployment[i] = p.uint()
	}
	if p.err != nil {
		return nil, nil, p.err
	}
	return r, p.b, nil
}
