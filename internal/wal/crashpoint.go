package wal

import "sync/atomic"

// Crashpoints are the WAL's fault-injection seams: named points on the
// write path (see wal.go for the placement) where a test hook can simulate
// a process death — panic with a sentinel for in-process kill-and-restart
// tests, or os.Exit for child-process kill tests — between any two disk
// state transitions. Production builds never install a hook, so the cost of
// a crashpoint is one atomic pointer load.
//
// The names, in the order a busy log visits them:
//
//	append.start    before the frame is buffered
//	append.framed   frame buffered, not yet flushed or synced
//	append.synced   frame flushed and fsynced (sync-policy permitting)
//	rotate.closed   full segment flushed, synced, and closed
//	rotate.created  next segment created and active
//	compact.written snapshot segment durable, old segments still present
//	compact.removed old segments removed
var crashHook atomic.Pointer[func(string)]

// SetCrashpointHook installs (or, with nil, removes) the global crashpoint
// hook. Test-only: the hook runs inline on the logging goroutine at every
// crashpoint, holding whatever locks the caller holds — it must only
// inspect the name and either return or abort the process/goroutine.
func SetCrashpointHook(f func(name string)) {
	if f == nil {
		crashHook.Store(nil)
		return
	}
	crashHook.Store(&f)
}

// Crashpoint invokes the installed hook, if any, with the point's name.
func Crashpoint(name string) {
	if f := crashHook.Load(); f != nil {
		(*f)(name)
	}
}
