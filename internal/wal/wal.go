// Package wal implements the append-only per-tenant log behind the durable
// serve daemon: an ordered sequence of CRC32C-framed records (epoch deltas,
// emitted advice, compaction snapshots) in rotated segment files. The
// layout follows the append-friendly write pattern of the SSD literature —
// records are written strictly sequentially, segments are immutable once
// rotated, and reclamation happens at segment granularity (compaction
// writes a snapshot into a fresh segment and unlinks whole old segments)
// rather than by rewriting in place.
//
// Durability is governed by a configurable fsync policy; recovery replays
// every record in order and tolerates a torn or corrupt tail by truncating
// the final segment at the last valid frame. Corruption anywhere before the
// tail fails recovery loudly: a mid-log hole means acknowledged state is
// gone, which must never be papered over by serving advice computed from a
// silently shortened history.
package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Frame layout: u32 length (kind byte + payload), u32 CRC32C over the same
// bytes, then the body. Little-endian throughout.
const (
	frameHeaderBytes = 8
	// maxFrameBytes bounds a single record; a length field beyond it marks
	// the frame corrupt without attempting a giant allocation.
	maxFrameBytes = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged record
	// survives any crash. The default, and the policy the serve daemon
	// uses for epoch records before acknowledging them.
	SyncAlways SyncPolicy = iota
	// SyncBatch fsyncs every Options.BatchAppends appends and on rotation,
	// compaction, and Close: a crash loses at most one batch of
	// acknowledged records. The group-commit point on the
	// durability/throughput curve.
	SyncBatch
	// SyncNone never fsyncs outside rotation, compaction, and Close; the
	// OS page cache decides. A process crash still loses nothing the
	// writer flushed; an OS crash may lose recent records.
	SyncNone
)

// Options sizes a Log.
type Options struct {
	// SegmentBytes rotates the active segment once it reaches this many
	// bytes; <= 0 selects 1 MiB. A record always lands whole in one
	// segment — rotation happens between records, so a segment may
	// overshoot by up to one frame.
	SegmentBytes int
	// Sync is the fsync policy; the zero value is SyncAlways.
	Sync SyncPolicy
	// BatchAppends is the SyncBatch group size; <= 0 selects 16.
	BatchAppends int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.BatchAppends <= 0 {
		o.BatchAppends = 16
	}
	return o
}

// Stats is a point-in-time counter snapshot of one log.
type Stats struct {
	// Appends counts records appended this process lifetime; Syncs counts
	// fsyncs; Rotations counts segment rotations; Compactions counts
	// completed Compact calls.
	Appends, Syncs, Rotations, Compactions int64
	// Segments is the number of live segment files; ActiveBytes the bytes
	// written to the active segment.
	Segments    int
	ActiveBytes int64
	// RecoveredRecords is the number of records replayed at Open;
	// TruncatedBytes is the size of the torn/corrupt tail Open discarded.
	RecoveredRecords int64
	TruncatedBytes   int64
}

// Log is one open append-only log. Not safe for concurrent use; the serve
// daemon serializes each tenant's appends behind the tenant session lock.
type Log struct {
	dir  string
	opts Options

	f        *os.File
	w        *bufio.Writer
	segIndex int
	segs     []int // live segment indices, ascending; last is active

	sinceSync int
	stats     Stats
	buf       []byte // frame scratch, reused across appends
}

// segName formats a segment file name; segIndexOf parses one.
func segName(idx int) string { return fmt.Sprintf("%08d.seg", idx) }

func segIndexOf(name string) (int, bool) {
	if !strings.HasSuffix(name, ".seg") || len(name) != 12 {
		return 0, false
	}
	idx, err := strconv.Atoi(name[:8])
	if err != nil || idx <= 0 {
		return 0, false
	}
	return idx, true
}

// Open opens (creating if absent) the log in dir, replays every record in
// order through replay (which may be nil), and leaves the log ready for
// appending. A torn or corrupt tail in the final segment is truncated at
// the last valid frame; corruption in any earlier segment fails the open.
// A replay error aborts the open and is returned verbatim.
func Open(dir string, opts Options, replay func(Record) error) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []int
	for _, e := range entries {
		if idx, ok := segIndexOf(e.Name()); ok && !e.IsDir() {
			segs = append(segs, idx)
		}
	}
	sort.Ints(segs)

	l := &Log{dir: dir, opts: opts}
	if len(segs) == 0 {
		if err := l.createSegment(1); err != nil {
			return nil, err
		}
		return l, nil
	}
	for i, idx := range segs {
		last := i == len(segs)-1
		if err := l.replaySegment(idx, last, replay); err != nil {
			return nil, err
		}
	}
	l.segs = segs
	l.segIndex = segs[len(segs)-1]
	f, err := os.OpenFile(l.segPath(l.segIndex), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	size, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.stats.ActiveBytes = size
	l.stats.Segments = len(l.segs)
	return l, nil
}

func (l *Log) segPath(idx int) string { return filepath.Join(l.dir, segName(idx)) }

// replaySegment streams one segment frame by frame, feeding valid records to
// replay. Frames are read through a fixed-size buffered reader into the log's
// reusable scratch buffer, so replay memory is bounded by the largest single
// frame rather than the segment size, and steady-state replay allocates only
// what each decoded record retains. In the final segment a torn or corrupt
// tail truncates the file at the last valid frame; anywhere else it is a
// hard error.
func (l *Log) replaySegment(idx int, last bool, replay func(Record) error) error {
	path := l.segPath(idx)
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	size := fi.Size()
	r := bufio.NewReaderSize(f, 1<<16)
	var off int64
	for off < size {
		rec, frameLen, ferr := l.readFrame(r, size-off)
		if ferr != nil {
			if !last {
				return fmt.Errorf("wal: segment %s: corrupt frame at offset %d before the tail: %v", segName(idx), off, ferr)
			}
			// Torn/corrupt tail: drop everything from the bad frame on.
			l.stats.TruncatedBytes = size - off
			if err := os.Truncate(path, off); err != nil {
				return fmt.Errorf("wal: truncating torn tail of %s: %w", segName(idx), err)
			}
			return nil
		}
		if replay != nil {
			if err := replay(rec); err != nil {
				return err
			}
		}
		l.stats.RecoveredRecords++
		off += int64(frameLen)
	}
	return nil
}

// readFrame reads and decodes one frame from r, reusing the log's scratch
// buffer for the frame body; decodeRecord never retains its input, so the
// buffer is safe to overwrite on the next call. remain is the number of
// unread segment bytes, used to distinguish a truncated body from an I/O
// error so the caller's torn-tail handling matches the old whole-segment
// parse exactly.
func (l *Log) readFrame(r *bufio.Reader, remain int64) (Record, int, error) {
	if remain < frameHeaderBytes {
		return nil, 0, fmt.Errorf("short header (%d bytes)", remain)
	}
	var hdr [frameHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("reading header: %v", err)
	}
	length := binary.LittleEndian.Uint32(hdr[:])
	if length < 1 || length > maxFrameBytes {
		return nil, 0, fmt.Errorf("implausible frame length %d", length)
	}
	want := binary.LittleEndian.Uint32(hdr[4:])
	if int64(length) > remain-frameHeaderBytes {
		return nil, 0, fmt.Errorf("truncated body (%d of %d bytes)", remain-frameHeaderBytes, length)
	}
	if cap(l.buf) < int(length) {
		l.buf = make([]byte, length)
	}
	body := l.buf[:length]
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, 0, fmt.Errorf("reading body: %v", err)
	}
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, 0, fmt.Errorf("CRC mismatch (%08x != %08x)", got, want)
	}
	rec, err := decodeRecord(body[0], body[1:])
	if err != nil {
		return nil, 0, err
	}
	return rec, frameHeaderBytes + int(length), nil
}

// parseFrame decodes one frame from the head of data, returning the record
// and the frame's total length. Any framing violation — short header, bad
// length, CRC mismatch, truncated body — is an error the caller maps to
// torn-tail truncation or hard corruption. A CRC-valid frame whose payload
// fails to decode is also reported here: a torn write cannot forge a CRC,
// so that case means format corruption and the caller treats it like any
// other bad frame.
func parseFrame(data []byte) (Record, int, error) {
	if len(data) < frameHeaderBytes {
		return nil, 0, fmt.Errorf("short header (%d bytes)", len(data))
	}
	length := binary.LittleEndian.Uint32(data)
	if length < 1 || length > maxFrameBytes {
		return nil, 0, fmt.Errorf("implausible frame length %d", length)
	}
	want := binary.LittleEndian.Uint32(data[4:])
	body := data[frameHeaderBytes:]
	if uint32(len(body)) < length {
		return nil, 0, fmt.Errorf("truncated body (%d of %d bytes)", len(body), length)
	}
	body = body[:length]
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, 0, fmt.Errorf("CRC mismatch (%08x != %08x)", got, want)
	}
	rec, err := decodeRecord(body[0], body[1:])
	if err != nil {
		return nil, 0, err
	}
	return rec, frameHeaderBytes + int(length), nil
}

// createSegment makes segment idx the active one.
func (l *Log) createSegment(idx int) error {
	f, err := os.OpenFile(l.segPath(idx), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	l.segIndex = idx
	l.segs = append(l.segs, idx)
	l.stats.ActiveBytes = 0
	l.stats.Segments = len(l.segs)
	return nil
}

// Append frames rec, writes it to the active segment, syncs per policy, and
// rotates if the segment is full. When Append returns under SyncAlways the
// record is on stable storage.
func (l *Log) Append(rec Record) error {
	if l.f == nil {
		return fmt.Errorf("wal: log is closed")
	}
	Crashpoint("append.start")
	frame, err := l.frame(rec)
	if err != nil {
		return err
	}
	if _, err := l.w.Write(frame); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.stats.ActiveBytes += int64(len(frame))
	l.stats.Appends++
	Crashpoint("append.framed")

	switch l.opts.Sync {
	case SyncAlways:
		if err := l.sync(); err != nil {
			return err
		}
		Crashpoint("append.synced")
	case SyncBatch:
		l.sinceSync++
		if l.sinceSync >= l.opts.BatchAppends {
			if err := l.sync(); err != nil {
				return err
			}
			Crashpoint("append.synced")
		}
	}

	if l.stats.ActiveBytes >= int64(l.opts.SegmentBytes) {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	return nil
}

// frame encodes rec into the reusable scratch buffer.
func (l *Log) frame(rec Record) ([]byte, error) {
	l.buf = l.buf[:0]
	l.buf = append(l.buf, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	l.buf = append(l.buf, rec.kind())
	l.buf = rec.appendPayload(l.buf)
	body := l.buf[frameHeaderBytes:]
	if len(body) > maxFrameBytes {
		return nil, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte frame cap", len(body), maxFrameBytes)
	}
	binary.LittleEndian.PutUint32(l.buf, uint32(len(body)))
	binary.LittleEndian.PutUint32(l.buf[4:], crc32.Checksum(body, castagnoli))
	return l.buf, nil
}

// sync flushes the writer and fsyncs the active segment.
func (l *Log) sync() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.sinceSync = 0
	l.stats.Syncs++
	return nil
}

// Sync forces the buffered suffix to stable storage regardless of policy.
func (l *Log) Sync() error {
	if l.f == nil {
		return fmt.Errorf("wal: log is closed")
	}
	return l.sync()
}

// rotate seals the active segment and opens the next one.
func (l *Log) rotate() error {
	if err := l.sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	Crashpoint("rotate.closed")
	if err := l.createSegment(l.segIndex + 1); err != nil {
		return err
	}
	l.stats.Rotations++
	Crashpoint("rotate.created")
	return nil
}

// Compact seals the log's history into snap: the snapshot is written as the
// first record of a fresh segment, made durable, and only then are all
// older segments unlinked. A crash between those two steps leaves both the
// old records and the snapshot on disk — replay applies the old records and
// then resets to the snapshot, so recovery converges to the same state from
// every intermediate crash point.
func (l *Log) Compact(snap *SnapshotRecord) error {
	if l.f == nil {
		return fmt.Errorf("wal: log is closed")
	}
	if snap == nil || snap.Matrix == nil {
		return fmt.Errorf("wal: nil compaction snapshot")
	}
	if err := l.sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	old := append([]int(nil), l.segs...)
	l.segs = nil
	if err := l.createSegment(l.segIndex + 1); err != nil {
		return err
	}
	frame, err := l.frame(snap)
	if err != nil {
		return err
	}
	if _, err := l.w.Write(frame); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.stats.ActiveBytes += int64(len(frame))
	l.stats.Appends++
	if err := l.sync(); err != nil {
		return err
	}
	Crashpoint("compact.written")
	for _, idx := range old {
		if err := os.Remove(l.segPath(idx)); err != nil {
			return fmt.Errorf("wal: removing compacted segment: %w", err)
		}
	}
	l.stats.Segments = len(l.segs)
	l.stats.Compactions++
	Crashpoint("compact.removed")
	return nil
}

// Close flushes, syncs, and closes the log. The log is unusable afterwards.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.sync()
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: %w", cerr)
	}
	l.f = nil
	l.w = nil
	return err
}

// Stats returns the log's counter snapshot.
func (l *Log) Stats() Stats { return l.stats }

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }
