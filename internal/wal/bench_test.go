package wal

import (
	"math/rand"
	"testing"

	"cloudia/internal/core"
)

// BenchmarkWALReplay measures cold-start recovery for one large tenant: a
// 1000-instance cost matrix logged as a full first epoch plus a run of
// partial-epoch deltas, replayed into a fresh MutableCostMatrix with the
// same bit-for-bit fingerprint verification the serve daemon performs
// before admitting traffic.
func BenchmarkWALReplay(b *testing.B) {
	const (
		n           = 1000
		epochs      = 16
		rowsPerTick = 32
	)
	dir := b.TempDir()
	l, err := Open(dir, Options{Sync: SyncNone, SegmentBytes: 64 << 20}, nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	mm := core.NewMutableCostMatrix(n)
	logEpoch := func(epoch int, rows []int) {
		for _, i := range rows {
			for j := 0; j < n; j++ {
				if j != i {
					mm.Set(i, j, rng.Float64()*10)
				}
			}
		}
		rec := &EpochRecord{Epoch: epoch, Fingerprint: mm.Fingerprint(), N: n}
		for _, i := range rows {
			vals := make([]float64, n)
			for j := 0; j < n; j++ {
				vals[j] = mm.At(i, j)
			}
			rec.Rows = append(rec.Rows, RowDelta{Row: i, Values: vals})
		}
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	full := make([]int, n)
	for i := range full {
		full[i] = i
	}
	logEpoch(1, full)
	for e := 2; e <= epochs; e++ {
		rows := make([]int, rowsPerTick)
		for i := range rows {
			rows[i] = rng.Intn(n)
		}
		logEpoch(e, rows)
	}
	wantFP := mm.Fingerprint()
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		rm := core.NewMutableCostMatrix(n)
		var gotFP core.Fingerprint
		rl, err := Open(dir, Options{}, func(rec Record) error {
			er := rec.(*EpochRecord)
			for _, d := range er.Rows {
				for j, v := range d.Values {
					rm.Set(d.Row, j, v)
				}
			}
			gotFP = rm.Fingerprint()
			if gotFP != er.Fingerprint {
				b.Fatalf("epoch %d fingerprint mismatch", er.Epoch)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		rl.Close()
		if gotFP != wantFP {
			b.Fatal("replayed matrix diverged")
		}
	}
}
