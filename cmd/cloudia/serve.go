package main

// The -serve mode: instead of advising one tenant end to end, the CLI
// reads a JSON batch of tenant jobs, measures each measurement group once,
// and routes every tenant through the sharded multi-tenant advisor
// (internal/serve). Tenants in one group share an allocation and one
// measured matrix — the fleet-re-advising scenario where the
// content-addressed Prep cache splits the preprocessing cost across all of
// them.
//
// Batch format:
//
//	{
//	  "shards": 2,
//	  "profile": "ec2",
//	  "occupancy": 0.6,
//	  "seed": 42,
//	  "tenants": [
//	    {"name": "web", "group": "dc1", "template": "mesh2d", "rows": 3,
//	     "cols": 4, "objective": "longest-link", "solver": "cp",
//	     "overalloc": 0.1, "budget_ms": 300, "seed": 7},
//	    {"name": "kv", "group": "dc1", "template": "bipartite",
//	     "frontends": 3, "storage": 9, "objective": "longest-link"}
//	  ]
//	}
//
// Tenant graph fields mirror the CLI template flags; "graph" names a JSON
// graph file instead. "group" defaults to the tenant name (its own
// allocation and measurement).

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"time"

	"cloudia/internal/advisor"
	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/measure"
	"cloudia/internal/serve"
	"cloudia/internal/solver"
	"cloudia/internal/topology"
)

type serveFile struct {
	Shards     int           `json:"shards"`
	QueueDepth int           `json:"queue_depth"`
	Profile    string        `json:"profile"`
	Occupancy  float64       `json:"occupancy"`
	Seed       int64         `json:"seed"`
	Tenants    []serveTenant `json:"tenants"`
}

type serveTenant struct {
	Name  string `json:"name"`
	Group string `json:"group"`

	Template  string `json:"template"`
	Rows      int    `json:"rows"`
	Cols      int    `json:"cols"`
	X         int    `json:"x"`
	Y         int    `json:"y"`
	Z         int    `json:"z"`
	Mids      int    `json:"mids"`
	Leaves    int    `json:"leaves"`
	Frontends int    `json:"frontends"`
	Storage   int    `json:"storage"`
	Ring      int    `json:"ring"`
	GraphPath string `json:"graph"`

	Objective string `json:"objective"`
	// Metric selects the latency summary searched: mean (default), p95, or
	// p99 — percentile metrics optimize the group's exact percentile
	// matrix, tie-breaking on the mean unless no_mean_tie_break is set.
	// (mean+sd is batch-advise only; served jobs are epoch-shaped.)
	Metric         string `json:"metric"`
	NoMeanTieBreak bool   `json:"no_mean_tie_break"`
	Solver         string `json:"solver"`
	ClusterK       int    `json:"clusterk"`
	// OverAlloc defaults to the paper's 0.1 when omitted, matching the
	// single-tenant -overalloc flag; an explicit 0 disables it.
	OverAlloc *float64 `json:"overalloc"`
	BudgetMS  int      `json:"budget_ms"`
	// DeadlineMS bounds the tenant's whole solve: past it the job returns
	// the best deployment found so far instead of running its budget out.
	DeadlineMS int   `json:"deadline_ms"`
	Seed       int64 `json:"seed"`
}

// tenantSpec casts a tenant's raw objective/metric strings into the one
// validated ObjectiveSpec every entry point shares; only the
// empty-objective default is resolved here.
func tenantSpec(tn serveTenant) advisor.ObjectiveSpec {
	spec := advisor.ObjectiveSpec{
		Objective:      solver.Objective(tn.Objective),
		Metric:         advisor.Metric(tn.Metric),
		NoMeanTieBreak: tn.NoMeanTieBreak,
	}
	if spec.Objective == "" {
		spec.Objective = solver.LongestLink
	}
	return spec
}

// tenantGraph builds one tenant's communication graph through the same
// template machinery the single-tenant flags use.
func tenantGraph(tn serveTenant) (*core.Graph, error) {
	return buildGraph(runConfig{
		template: tn.Template, graphPath: tn.GraphPath,
		rows: orDefault(tn.Rows, 4), cols: orDefault(tn.Cols, 4),
		dimX: orDefault(tn.X, 3), dimY: orDefault(tn.Y, 3), dimZ: orDefault(tn.Z, 3),
		mids: orDefault(tn.Mids, 3), leaves: orDefault(tn.Leaves, 9),
		frontends: orDefault(tn.Frontends, 4), storage: orDefault(tn.Storage, 12),
		ringN: orDefault(tn.Ring, 8),
	})
}

func orDefault(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// submitWithRetry submits a job, riding out transient ErrBusy rejections
// with a bounded, jittered exponential backoff: 7 attempts, sleeping
// 10ms · 2^attempt scaled by a uniform [0.5,1.5) jitter between them, about
// 1.3s worst case. Only ErrBusy retries — it means the admission queue is
// momentarily full and workers are draining it; every other error
// (ErrOverBudget included: the pending-budget cap does not clear on its
// own while nothing of ours is queued) is the caller's to handle. The
// sleep function is injected for tests.
func submitWithRetry(srv *serve.Server, job serve.Job, rng *rand.Rand, sleep func(time.Duration)) (*serve.Ticket, error) {
	const attempts = 7
	delay := 10 * time.Millisecond
	for attempt := 0; ; attempt++ {
		tk, err := srv.Submit(job)
		if err == nil || !errors.Is(err, serve.ErrBusy) || attempt == attempts-1 {
			return tk, err
		}
		jitter := 0.5 + rng.Float64()
		sleep(time.Duration(float64(delay) * jitter))
		delay *= 2
	}
}

// servedTenant pairs a parsed tenant with its built graph and ticket.
type servedTenant struct {
	spec   serveTenant
	graph  *core.Graph
	group  string
	ticket *serve.Ticket
}

func runServe(cfg runConfig) error {
	raw, err := os.ReadFile(cfg.servePath)
	if err != nil {
		return err
	}
	var batch serveFile
	if err := json.Unmarshal(raw, &batch); err != nil {
		return fmt.Errorf("parsing %s: %w", cfg.servePath, err)
	}
	if len(batch.Tenants) == 0 {
		return fmt.Errorf("%s: no tenants in batch", cfg.servePath)
	}
	if batch.Profile == "" {
		batch.Profile = cfg.profile
	}
	if batch.Occupancy == 0 {
		batch.Occupancy = cfg.occupancy
	}
	if batch.Seed == 0 {
		batch.Seed = cfg.seed
	}

	var prof topology.Profile
	switch batch.Profile {
	case "ec2":
		prof = topology.EC2Profile()
	case "gce":
		prof = topology.GCEProfile()
	case "rackspace":
		prof = topology.RackspaceProfile()
	default:
		return fmt.Errorf("unknown profile %q", batch.Profile)
	}
	dc, err := topology.New(prof, batch.Seed)
	if err != nil {
		return err
	}
	prov, err := cloud.NewProvider(dc, batch.Occupancy, batch.Seed+1)
	if err != nil {
		return err
	}

	// Build graphs and validate tenants before allocating anything.
	seen := make(map[string]bool, len(batch.Tenants))
	tenants := make([]*servedTenant, 0, len(batch.Tenants))
	groupNeed := make(map[string]int)
	groupOrder := []string{}
	// groupPcts collects, per group, the tail percentiles its tenants'
	// metrics search, so the group measurement also yields those matrices.
	groupPcts := make(map[string]map[float64]bool)
	for _, tn := range batch.Tenants {
		if tn.Name == "" {
			return fmt.Errorf("%s: tenant without a name", cfg.servePath)
		}
		if seen[tn.Name] {
			return fmt.Errorf("%s: duplicate tenant %q", cfg.servePath, tn.Name)
		}
		seen[tn.Name] = true
		spec := tenantSpec(tn)
		if err := spec.Validate(); err != nil {
			return fmt.Errorf("tenant %q: %w", tn.Name, err)
		}
		if spec.Metric == advisor.MetricMeanPlusStd {
			// serve.Submit would reject this too, but only after every
			// group was allocated and measured.
			return fmt.Errorf("tenant %q: served jobs do not support the %q metric", tn.Name, spec.Metric)
		}
		if tn.Solver != "" {
			// Probe the solver name now: discovering it at ticket.Wait would
			// be after every group was allocated and measured.
			if _, err := advisor.NewSolver(tn.Solver, 1, 0); err != nil {
				return fmt.Errorf("tenant %q: %w", tn.Name, err)
			}
		}
		overAlloc := 0.1 // the paper's default, as the -overalloc flag
		if tn.OverAlloc != nil {
			overAlloc = *tn.OverAlloc
		}
		if overAlloc < 0 {
			return fmt.Errorf("tenant %q: negative over-allocation %g", tn.Name, overAlloc)
		}
		g, err := tenantGraph(tn)
		if err != nil {
			return fmt.Errorf("tenant %q: %w", tn.Name, err)
		}
		st := &servedTenant{spec: tn, graph: g, group: tn.Group}
		if st.group == "" {
			st.group = tn.Name
		}
		if pct := spec.TailPercentile(); pct > 0 {
			if groupPcts[st.group] == nil {
				groupPcts[st.group] = make(map[float64]bool)
			}
			groupPcts[st.group][pct] = true
		}
		need := advisor.OverAllocate(g.NumNodes(), overAlloc)
		if groupNeed[st.group] == 0 {
			groupOrder = append(groupOrder, st.group)
		}
		if need > groupNeed[st.group] {
			groupNeed[st.group] = need
		}
		tenants = append(tenants, st)
	}

	// Allocate and measure once per group; every member shares the matrix.
	// Groups with percentile-metric tenants also publish those exact
	// percentile matrices from the same samples.
	groupMatrix := make(map[string]*core.CostMatrix, len(groupNeed))
	groupTail := make(map[string]map[float64]*core.CostMatrix)
	for gi, group := range groupOrder {
		total := groupNeed[group]
		instances, err := prov.RunInstances(total)
		if err != nil {
			return fmt.Errorf("group %q: %w", group, err)
		}
		meas, err := measure.Run(dc, instances, measure.Options{
			Scheme:     measure.Staged,
			DurationMS: 20 * float64(total),
			Seed:       batch.Seed + int64(gi),
		})
		if err != nil {
			return fmt.Errorf("group %q: %w", group, err)
		}
		groupMatrix[group] = meas.MeanMatrix()
		for pct := range groupPcts[group] {
			if groupTail[group] == nil {
				groupTail[group] = make(map[float64]*core.CostMatrix)
			}
			groupTail[group][pct] = meas.PercentileMatrix(pct)
		}
	}

	// The batch submits every tenant before waiting on any. When the batch
	// leaves QueueDepth unset, admission capacity (Shards*QueueDepth in
	// total) is sized to cover the whole batch; an explicit QueueDepth is
	// respected as real backpressure, and submission rides it out with a
	// bounded, jittered exponential backoff — workers drain the queue while
	// the submitter sleeps.
	shards := batch.Shards
	if shards <= 0 {
		shards = 2 // serve.New's default
	}
	queue := batch.QueueDepth
	if queue <= 0 {
		queue = (len(batch.Tenants) + shards - 1) / shards
		if queue < 16 {
			queue = 16
		}
	}
	srv := serve.New(serve.Config{Shards: batch.Shards, QueueDepth: queue})
	defer srv.Close()
	backoffRNG := rand.New(rand.NewSource(batch.Seed + 2))
	for _, st := range tenants {
		spec := tenantSpec(st.spec)
		budget := st.spec.BudgetMS
		if budget == 0 {
			budget = 500
		}
		var tail *core.CostMatrix
		if pct := spec.TailPercentile(); pct > 0 {
			tail = groupTail[st.group][pct]
		}
		st.ticket, err = submitWithRetry(srv, serve.Job{
			Tenant:        st.spec.Name,
			Datacenter:    st.group,
			Graph:         st.graph,
			ObjectiveSpec: spec,
			Matrix:        groupMatrix[st.group],
			TailMatrix:    tail,
			SolverName:    st.spec.Solver,
			ClusterK:      st.spec.ClusterK,
			RoundBudget:   solver.Budget{Time: time.Duration(budget) * time.Millisecond},
			Timeout:       time.Duration(st.spec.DeadlineMS) * time.Millisecond,
			Seed:          st.spec.Seed,
		}, backoffRNG, time.Sleep)
		if err != nil {
			return fmt.Errorf("tenant %q: %w", st.spec.Name, err)
		}
	}

	type servedJSON struct {
		Tenant      string  `json:"tenant"`
		Group       string  `json:"group"`
		Shard       int     `json:"shard"`
		Stolen      bool    `json:"stolen,omitempty"`
		Nodes       int     `json:"nodes"`
		DefaultCost float64 `json:"default_cost_ms"`
		TunedCost   float64 `json:"tuned_cost_ms"`
		Improvement float64 `json:"improvement_fraction"`
		CacheHits   int     `json:"cache_hits"`
		CacheMisses int     `json:"cache_misses"`
		QueuedMS    float64 `json:"queued_ms"`
		RanMS       float64 `json:"ran_ms"`
	}
	out := make([]servedJSON, 0, len(tenants))
	for _, st := range tenants {
		res := st.ticket.Wait()
		if res.Err != nil {
			return fmt.Errorf("tenant %q: %w", st.spec.Name, res.Err)
		}
		n := st.graph.NumNodes()
		def := res.Outcome.Problem.Cost(core.Identity(n))
		improv := 0.0
		if def > 0 {
			improv = (def - res.Outcome.Cost) / def
		}
		out = append(out, servedJSON{
			Tenant: st.spec.Name, Group: st.group, Shard: res.Shard, Stolen: res.Stolen, Nodes: n,
			DefaultCost: def, TunedCost: res.Outcome.Cost, Improvement: improv,
			CacheHits: res.CacheHits, CacheMisses: res.CacheMisses,
			QueuedMS: float64(res.Queued) / float64(time.Millisecond),
			RanMS:    float64(res.Ran) / float64(time.Millisecond),
		})
	}
	stats := srv.Stats()

	if cfg.asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Tenants []servedJSON     `json:"tenants"`
			Steals  int64            `json:"steals"`
			Cache   serve.CacheStats `json:"cache"`
		}{out, stats.Steals, stats.Cache})
	}
	fmt.Printf("ClouDiA sharded serving: %d tenants, %d measurement groups\n", len(tenants), len(groupOrder))
	fmt.Printf("  %-12s %-10s %6s %5s %10s %10s %7s %11s %8s\n",
		"tenant", "group", "shard", "nodes", "default", "tuned", "improv", "cache(h/m)", "ran")
	for _, r := range out {
		shard := fmt.Sprintf("%d", r.Shard)
		if r.Stolen {
			shard += "*" // ran on a worker other than its home shard
		}
		fmt.Printf("  %-12s %-10s %6s %5d %9.4f %10.4f %6.1f%% %8d/%-2d %7.0fms\n",
			r.Tenant, r.Group, shard, r.Nodes, r.DefaultCost, r.TunedCost,
			100*r.Improvement, r.CacheHits, r.CacheMisses, r.RanMS)
	}
	fmt.Printf("  cache: %d hits, %d misses, %d matrices held; %d steals (* = stolen dispatch)\n",
		stats.Cache.Hits, stats.Cache.Misses, stats.Cache.Matrices, stats.Steals)
	return nil
}
