// Command cloudia is the deployment advisor CLI. It simulates a public
// cloud (EC2-, GCE-, or Rackspace-like), allocates instances for the given
// communication graph with over-allocation, measures pairwise latencies,
// searches for an optimized deployment plan, terminates the extra
// instances, and prints the plan.
//
// Usage examples:
//
//	cloudia -template mesh2d -rows 10 -cols 10 -objective longest-link
//	cloudia -template tree -mids 5 -leaves 45 -objective longest-path -solver mip
//	cloudia -graph app.json -objective longest-link -overalloc 0.2 -json
//
// The JSON graph format is {"nodes": N, "edges": [[from,to], ...]}.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"cloudia/internal/advisor"
	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/graphio"
	"cloudia/internal/measure"
	"cloudia/internal/par"
	"cloudia/internal/solver"
	"cloudia/internal/topology"
)

func main() {
	var (
		template  = flag.String("template", "", "graph template: mesh2d, mesh3d, tree, bipartite, ring")
		rows      = flag.Int("rows", 4, "mesh rows (mesh2d)")
		cols      = flag.Int("cols", 4, "mesh cols (mesh2d)")
		dimX      = flag.Int("x", 3, "mesh x (mesh3d)")
		dimY      = flag.Int("y", 3, "mesh y (mesh3d)")
		dimZ      = flag.Int("z", 3, "mesh z (mesh3d)")
		mids      = flag.Int("mids", 3, "aggregators (tree)")
		leaves    = flag.Int("leaves", 9, "leaves (tree)")
		frontends = flag.Int("frontends", 4, "front-ends (bipartite)")
		storage   = flag.Int("storage", 12, "storage nodes (bipartite)")
		ringN     = flag.Int("ring", 8, "ring size (ring)")
		graphPath = flag.String("graph", "", "JSON communication graph file (overrides -template)")
		objective = flag.String("objective", "longest-link", "objective: longest-link or longest-path")
		overalloc = flag.Float64("overalloc", 0.1, "over-allocation ratio")
		metric    = flag.String("metric", "mean", "latency metric: mean, mean+sd, p95, p99 (percentiles optimize the tail, tie-breaking on the mean)")
		scheme    = flag.String("scheme", "staged", "measurement scheme: token, uncoordinated, staged")
		solverFlg = flag.String("solver", "", "solver: cp, mip, g1, g2, r1, r2, r2l, sa, portfolio (default: cp for LL, mip for LP)")
		clusterK  = flag.Int("clusterk", 0, "cost clusters for cp/mip (0 = paper default)")
		budgetMS  = flag.Int("budget-ms", 2000, "solver wall-clock budget in milliseconds")
		profile   = flag.String("profile", "ec2", "simulated cloud profile: ec2, gce, rackspace")
		occupancy = flag.Float64("occupancy", 0.6, "pre-existing datacenter occupancy [0,1)")
		seed      = flag.Int64("seed", 42, "random seed")
		asJSON    = flag.Bool("json", false, "emit the full report as JSON")
		stream    = flag.Bool("stream", false, "stream measurement into incremental advising (warm-started rounds per matrix epoch)")
		epochMS   = flag.Float64("epoch-ms", 0, "streaming epoch period in virtual ms (0 = measurement budget / 8)")
		servePath = flag.String("serve", "", "serve a JSON batch of tenant jobs through the sharded multi-tenant advisor (path to batch file)")
		listen    = flag.String("listen", "", "run the durable serve daemon on this address (e.g. :8080)")
		walDir    = flag.String("wal-dir", "cloudia-wal", "write-ahead log directory for -listen")
		fsync     = flag.String("fsync", "always", "WAL fsync policy for -listen: always, batch, none")
		shards    = flag.Int("shards", 0, "worker shards for -listen (0 = default)")
		workers   = flag.Int("workers", 0, "worker goroutines for data-parallel cold paths (0 = GOMAXPROCS, 1 = sequential)")
		pprofFlag = flag.Bool("pprof", false, "expose net/http/pprof on the -listen address under /debug/pprof/")
	)
	flag.Parse()
	par.SetWorkers(*workers)

	if err := run(runConfig{
		template: *template, rows: *rows, cols: *cols,
		dimX: *dimX, dimY: *dimY, dimZ: *dimZ,
		mids: *mids, leaves: *leaves, frontends: *frontends, storage: *storage,
		ringN: *ringN, graphPath: *graphPath,
		objective: *objective, overalloc: *overalloc, metric: *metric,
		scheme: *scheme, solver: *solverFlg, clusterK: *clusterK,
		budgetMS: *budgetMS, profile: *profile, occupancy: *occupancy,
		seed: *seed, asJSON: *asJSON,
		stream: *stream, epochMS: *epochMS,
		servePath: *servePath,
		listen:    *listen, walDir: *walDir, fsync: *fsync, shards: *shards,
		pprof: *pprofFlag,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "cloudia:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	template                          string
	rows, cols, dimX, dimY, dimZ      int
	mids, leaves, frontends, storage  int
	ringN                             int
	graphPath                         string
	objective, metric, scheme, solver string
	profile                           string
	overalloc, occupancy              float64
	clusterK, budgetMS                int
	seed                              int64
	asJSON                            bool
	stream                            bool
	epochMS                           float64
	servePath                         string
	listen, walDir, fsync             string
	shards                            int
	pprof                             bool
}

// validateFlags rejects flag combinations that can never run, before any
// simulation work starts. What to optimize — objective, metric, scheme,
// and their combinations — is advisor.ObjectiveSpec's job, validated once
// inside the advisor; the flags here are only about *how* the process runs
// (serve batches, daemons, streaming sources). `-stream -metric p99` is a
// supported combination now: epochs carry sketch-based percentile
// matrices.
func validateFlags(cfg runConfig) error {
	if cfg.servePath != "" && cfg.stream {
		return fmt.Errorf("-serve batches cannot be combined with -stream (epoch sources are per-job in a batch)")
	}
	if cfg.listen != "" {
		if cfg.servePath != "" {
			return fmt.Errorf("-listen runs a daemon; batch jobs go to it over HTTP, not via -serve")
		}
		if cfg.stream {
			return fmt.Errorf("-listen daemons receive epochs over HTTP; -stream is the single-run mode")
		}
		if cfg.walDir == "" {
			return fmt.Errorf("-listen requires a -wal-dir")
		}
		if _, err := parseFsync(cfg.fsync); err != nil {
			return err
		}
	}
	if cfg.pprof && cfg.listen == "" {
		return fmt.Errorf("-pprof exposes profiles on the daemon address and needs -listen")
	}
	return nil
}

func run(cfg runConfig) error {
	if err := validateFlags(cfg); err != nil {
		return err
	}
	if cfg.listen != "" {
		return runDaemon(cfg)
	}
	if cfg.servePath != "" {
		return runServe(cfg)
	}
	g, err := buildGraph(cfg)
	if err != nil {
		return err
	}

	var prof topology.Profile
	switch cfg.profile {
	case "ec2":
		prof = topology.EC2Profile()
	case "gce":
		prof = topology.GCEProfile()
	case "rackspace":
		prof = topology.RackspaceProfile()
	default:
		return fmt.Errorf("unknown profile %q", cfg.profile)
	}
	dc, err := topology.New(prof, cfg.seed)
	if err != nil {
		return err
	}
	prov, err := cloud.NewProvider(dc, cfg.occupancy, cfg.seed+1)
	if err != nil {
		return err
	}

	// The raw flag strings cast straight into the objective spec; its
	// Validate (run by Advise/StreamingAdvise) is the single authority on
	// unknown values and unsupported combinations — no CLI-side switch.
	acfg := advisor.Config{
		Graph: g,
		ObjectiveSpec: advisor.ObjectiveSpec{
			Objective: solver.Objective(cfg.objective),
			Metric:    advisor.Metric(cfg.metric),
			Scheme:    measure.Scheme(cfg.scheme),
		},
		OverAllocation: cfg.overalloc,
		SolverName:     cfg.solver,
		ClusterK:       cfg.clusterK,
		SolverBudget:   solver.Budget{Time: time.Duration(cfg.budgetMS) * time.Millisecond},
		Seed:           cfg.seed,
	}

	if cfg.stream {
		srep, err := advisor.StreamingAdvise(prov, advisor.StreamingConfig{
			Config:  acfg,
			EpochMS: cfg.epochMS,
		})
		if err != nil {
			return err
		}
		if cfg.asJSON {
			return printJSON(&srep.Report, g, srep.Rounds)
		}
		printText(&srep.Report, g)
		printRounds(srep.Rounds, srep.FirstAdvice)
		return nil
	}

	rep, err := advisor.Advise(prov, acfg)
	if err != nil {
		return err
	}
	if cfg.asJSON {
		return printJSON(rep, g, nil)
	}
	printText(rep, g)
	return nil
}

func buildGraph(cfg runConfig) (*core.Graph, error) {
	if cfg.graphPath != "" {
		f, err := os.Open(cfg.graphPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, err := graphio.ReadGraph(f)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", cfg.graphPath, err)
		}
		return g, nil
	}
	switch cfg.template {
	case "mesh2d", "":
		return core.Mesh2D(cfg.rows, cfg.cols)
	case "mesh3d":
		return core.Mesh3D(cfg.dimX, cfg.dimY, cfg.dimZ)
	case "tree":
		return core.TwoLevelAggregation(cfg.mids, cfg.leaves)
	case "bipartite":
		return core.Bipartite(cfg.frontends, cfg.storage)
	case "ring":
		return core.Ring(cfg.ringN)
	}
	return nil, fmt.Errorf("unknown template %q", cfg.template)
}

type jsonReport struct {
	Nodes         int          `json:"nodes"`
	Instances     int          `json:"instances_allocated"`
	Terminated    []string     `json:"terminated"`
	DefaultCost   float64      `json:"default_cost_ms"`
	TunedCost     float64      `json:"tuned_cost_ms"`
	Improvement   float64      `json:"improvement_fraction"`
	Solver        string       `json:"solver"`
	SearchOptimal bool         `json:"search_proved_optimal"`
	Assignments   []jsonAssign `json:"assignments"`
	Rounds        []jsonRound  `json:"streaming_rounds,omitempty"`
}

type jsonAssign struct {
	Node     int    `json:"node"`
	Instance string `json:"instance"`
	IP       string `json:"ip"`
}

type jsonRound struct {
	Epoch       int     `json:"epoch"`
	AtMS        float64 `json:"at_ms"`
	Final       bool    `json:"final"`
	ChangedRows int     `json:"changed_rows"`
	Cost        float64 `json:"cost_ms"`
	Improved    bool    `json:"improved"`
	Winner      string  `json:"winner,omitempty"`
	ElapsedMS   float64 `json:"elapsed_ms"`
}

func printJSON(rep *advisor.Report, g *core.Graph, rounds []advisor.Round) error {
	out := jsonReport{
		Nodes:         g.NumNodes(),
		Instances:     len(rep.AllInstances),
		Terminated:    rep.TerminatedIDs,
		DefaultCost:   rep.DefaultCost,
		TunedCost:     rep.TunedCost,
		Improvement:   rep.Improvement(),
		Solver:        rep.SolverName,
		SearchOptimal: rep.Search.Optimal,
	}
	for _, r := range rounds {
		out.Rounds = append(out.Rounds, jsonRound{
			Epoch:       r.Epoch,
			AtMS:        r.AtMS,
			Final:       r.Final,
			ChangedRows: r.ChangedRows,
			Cost:        r.Cost,
			Improved:    r.Improved,
			Winner:      r.Winner,
			ElapsedMS:   float64(r.Elapsed) / float64(time.Millisecond),
		})
	}
	for node, inst := range rep.Assignments {
		out.Assignments = append(out.Assignments, jsonAssign{
			Node:     node,
			Instance: inst.ID,
			IP:       fmt.Sprintf("%d.%d.%d.%d", inst.IP[0], inst.IP[1], inst.IP[2], inst.IP[3]),
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func printText(rep *advisor.Report, g *core.Graph) {
	fmt.Printf("ClouDiA deployment plan\n")
	fmt.Printf("  application nodes:     %d\n", g.NumNodes())
	fmt.Printf("  instances allocated:   %d\n", len(rep.AllInstances))
	fmt.Printf("  instances terminated:  %d\n", len(rep.TerminatedIDs))
	fmt.Printf("  solver:                %s (optimal proven: %v)\n", rep.SolverName, rep.Search.Optimal)
	fmt.Printf("  default deployment:    %.4f ms\n", rep.DefaultCost)
	fmt.Printf("  tuned deployment:      %.4f ms\n", rep.TunedCost)
	fmt.Printf("  predicted improvement: %.1f%%\n", 100*rep.Improvement())
	fmt.Printf("  node -> instance:\n")
	for node, inst := range rep.Assignments {
		fmt.Printf("    %4d -> %s (%d.%d.%d.%d)\n", node, inst.ID,
			inst.IP[0], inst.IP[1], inst.IP[2], inst.IP[3])
	}
}

func printRounds(rounds []advisor.Round, firstAdvice time.Duration) {
	fmt.Printf("  streaming rounds (first advice after %v):\n", firstAdvice.Round(time.Millisecond))
	for _, r := range rounds {
		mark := " "
		if r.Improved {
			mark = "*"
		}
		final := ""
		if r.Final {
			final = "  (final)"
		}
		fmt.Printf("    epoch %2d @%7.1f ms  %3d rows changed  cost %8.4f ms %s %s%s\n",
			r.Epoch, r.AtMS, r.ChangedRows, r.Cost, mark, r.Winner, final)
	}
}
