package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildGraphTemplates(t *testing.T) {
	cases := []struct {
		cfg   runConfig
		nodes int
	}{
		{runConfig{template: "mesh2d", rows: 3, cols: 4}, 12},
		{runConfig{template: "", rows: 2, cols: 2}, 4}, // default template
		{runConfig{template: "mesh3d", dimX: 2, dimY: 2, dimZ: 2}, 8},
		{runConfig{template: "tree", mids: 3, leaves: 9}, 13},
		{runConfig{template: "bipartite", frontends: 2, storage: 3}, 5},
		{runConfig{template: "ring", ringN: 6}, 6},
	}
	for _, c := range cases {
		g, err := buildGraph(c.cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.cfg.template, err)
		}
		if g.NumNodes() != c.nodes {
			t.Fatalf("%s: %d nodes, want %d", c.cfg.template, g.NumNodes(), c.nodes)
		}
	}
}

func TestBuildGraphUnknownTemplate(t *testing.T) {
	if _, err := buildGraph(runConfig{template: "torus"}); err == nil {
		t.Fatal("unknown template accepted")
	}
}

func TestBuildGraphFromJSONFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.json")
	data := `{"nodes": 3, "edges": [[0,1],[1,2]], "weights": {"0-1": 2.5}}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := buildGraph(runConfig{graphPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Weight(0, 1) != 2.5 {
		t.Fatal("weight not loaded")
	}
}

func TestBuildGraphMissingFile(t *testing.T) {
	if _, err := buildGraph(runConfig{graphPath: "/nonexistent/g.json"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunEndToEndSmall(t *testing.T) {
	// Exercise the whole CLI path (minus flag parsing and printing to a
	// terminal) on a tiny configuration.
	err := run(runConfig{
		template: "mesh2d", rows: 2, cols: 2,
		objective: "longest-link", metric: "mean", scheme: "staged",
		profile: "ec2", occupancy: 0.5, overalloc: 0.25,
		budgetMS: 50, seed: 3, asJSON: true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunEndToEndStreaming(t *testing.T) {
	// The -stream path: incremental advising over measurement epochs.
	err := run(runConfig{
		template: "mesh2d", rows: 2, cols: 2,
		objective: "longest-link", metric: "mean", scheme: "staged",
		profile: "ec2", occupancy: 0.5, overalloc: 0.25,
		budgetMS: 80, seed: 5, asJSON: true,
		stream: true, epochMS: 30,
	})
	if err != nil {
		t.Fatalf("run -stream: %v", err)
	}
}

func TestStreamMetricSupport(t *testing.T) {
	// mean+sd has no incremental per-epoch form; the streaming pipeline
	// rejects it before any instance is allocated.
	err := run(runConfig{
		template: "mesh2d", rows: 2, cols: 2,
		objective: "longest-link", metric: "mean+sd", scheme: "staged",
		profile: "ec2", occupancy: 0.5,
		stream: true,
	})
	if err == nil {
		t.Fatal("-stream -metric mean+sd accepted")
	}
	if !strings.Contains(err.Error(), "does not support") {
		t.Fatalf("-stream -metric mean+sd: error %q does not explain the restriction", err)
	}
	// Mean and the percentile metrics stream end-to-end: epochs carry
	// sketch-based tail matrices, so p99 advising is no longer batch-only.
	for _, metric := range []string{"mean", "p99"} {
		if err := run(runConfig{
			template: "mesh2d", rows: 2, cols: 2,
			objective: "longest-link", metric: metric, scheme: "staged",
			profile: "ec2", occupancy: 0.5, budgetMS: 50, seed: 3,
			stream: true, epochMS: 20, asJSON: true,
		}); err != nil {
			t.Fatalf("-stream -metric %s: %v", metric, err)
		}
	}
}

func TestRunServeBatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.json")
	batch := `{
	  "shards": 2,
	  "seed": 9,
	  "tenants": [
	    {"name": "web", "group": "dc1", "template": "mesh2d", "rows": 2, "cols": 3,
	     "objective": "longest-link", "solver": "cp", "budget_ms": 60, "seed": 1},
	    {"name": "kv", "group": "dc1", "template": "bipartite", "frontends": 2,
	     "storage": 3, "objective": "longest-link", "solver": "g1", "budget_ms": 60},
	    {"name": "solo", "template": "ring", "ring": 5,
	     "objective": "longest-link", "solver": "g2", "budget_ms": 60}
	  ]
	}`
	if err := os.WriteFile(path, []byte(batch), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(runConfig{
		servePath: path, profile: "ec2", occupancy: 0.5, seed: 3, asJSON: true,
	}); err != nil {
		t.Fatalf("run -serve: %v", err)
	}
}

func TestRunServeBatchRejectsBadBatches(t *testing.T) {
	dir := t.TempDir()
	write := func(name, data string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := runConfig{profile: "ec2", occupancy: 0.5, seed: 3}
	cases := []struct {
		name, batch string
	}{
		{"empty", `{"tenants": []}`},
		{"unnamed", `{"tenants": [{"template": "ring", "ring": 4, "objective": "longest-link"}]}`},
		{"duplicate", `{"tenants": [
			{"name": "a", "template": "ring", "ring": 4, "objective": "longest-link"},
			{"name": "a", "template": "ring", "ring": 4, "objective": "longest-link"}]}`},
		{"objective", `{"tenants": [{"name": "a", "template": "ring", "ring": 4, "objective": "widest-path"}]}`},
		{"solver", `{"tenants": [{"name": "a", "template": "ring", "ring": 4, "objective": "longest-link", "solver": "oracle"}]}`},
		{"overalloc", `{"tenants": [{"name": "a", "template": "ring", "ring": 4, "objective": "longest-link", "overalloc": -0.5}]}`},
		{"template", `{"tenants": [{"name": "a", "template": "torus", "objective": "longest-link"}]}`},
		{"notjson", `{"tenants": `},
	}
	for _, c := range cases {
		cfg := base
		cfg.servePath = write(c.name+".json", c.batch)
		if err := run(cfg); err == nil {
			t.Errorf("%s batch accepted", c.name)
		}
	}
	cfg := base
	cfg.servePath = filepath.Join(dir, "missing.json")
	if err := run(cfg); err == nil {
		t.Error("missing batch file accepted")
	}
	cfg = base
	cfg.servePath = write("ok.json", `{"tenants": [{"name": "a", "template": "ring", "ring": 4, "objective": "longest-link"}]}`)
	cfg.stream = true
	if err := run(cfg); err == nil {
		t.Error("-serve combined with -stream accepted")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	base := runConfig{
		template: "mesh2d", rows: 2, cols: 2,
		objective: "longest-link", metric: "mean", scheme: "staged",
		profile: "ec2", occupancy: 0.5, budgetMS: 10, seed: 3,
	}
	bad := base
	bad.profile = "azure"
	if err := run(bad); err == nil {
		t.Fatal("unknown profile accepted")
	}
	bad = base
	bad.objective = "shortest-link"
	if err := run(bad); err == nil {
		t.Fatal("unknown objective accepted")
	}
	bad = base
	bad.metric = "p50"
	if err := run(bad); err == nil {
		t.Fatal("unknown metric accepted")
	}
}
