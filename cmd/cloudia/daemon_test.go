package main

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"cloudia/internal/advisor"
	"cloudia/internal/core"
	"cloudia/internal/measure"
	"cloudia/internal/serve"
	"cloudia/internal/solver"
	"cloudia/internal/wal"
)

func TestParseFsync(t *testing.T) {
	cases := []struct {
		in   string
		want wal.SyncPolicy
	}{
		{"", wal.SyncAlways},
		{"always", wal.SyncAlways},
		{"batch", wal.SyncBatch},
		{"none", wal.SyncNone},
	}
	for _, c := range cases {
		got, err := parseFsync(c.in)
		if err != nil || got != c.want {
			t.Errorf("parseFsync(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := parseFsync("every-other-tuesday"); err == nil {
		t.Error("bad fsync policy accepted")
	}
}

func TestValidateFlagsDaemonCombos(t *testing.T) {
	cases := []struct {
		name string
		cfg  runConfig
		want string
	}{
		{"listen+serve", runConfig{listen: ":0", walDir: "w", servePath: "b.json"}, "-serve"},
		{"listen+stream", runConfig{listen: ":0", walDir: "w", stream: true}, "-stream"},
		{"listen without wal dir", runConfig{listen: ":0"}, "-wal-dir"},
		{"listen bad fsync", runConfig{listen: ":0", walDir: "w", fsync: "sometimes"}, "fsync"},
	}
	for _, c := range cases {
		err := validateFlags(c.cfg)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
	if err := validateFlags(runConfig{listen: ":0", walDir: "w", fsync: "batch"}); err != nil {
		t.Errorf("valid daemon flags rejected: %v", err)
	}
}

// retryJob is a small valid job for the backoff tests; setting block swaps
// the matrix for an epoch channel that never delivers, parking the worker
// that dequeues it until the channel closes.
func retryJob(t *testing.T, block <-chan measure.Epoch) serve.Job {
	t.Helper()
	g, err := core.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	job := serve.Job{
		Tenant: "t", Graph: g, ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
		SolverName: "g2", RoundBudget: solver.Budget{Nodes: 100},
	}
	if block != nil {
		job.Epochs = block
		return job
	}
	mm := core.NewMutableCostMatrix(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				mm.Set(i, j, float64(1+i+j))
			}
		}
	}
	job.Matrix, _ = mm.Snapshot()
	return job
}

// fillQueue submits jobs until the admission queue holds exactly one,
// retrying while the worker is still racing to dequeue its predecessor.
func fillQueue(t *testing.T, srv *serve.Server) *serve.Ticket {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		tk, err := srv.Submit(retryJob(t, nil))
		if err == nil {
			return tk
		}
		if !errors.Is(err, serve.ErrBusy) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never dequeued the parked job")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitWithRetryRidesOutBusy(t *testing.T) {
	// One shard, one queue slot: a parked job holds the worker, a queued
	// one fills admission, so the retried submit starts out ErrBusy.
	srv := serve.New(serve.Config{Shards: 1, QueueDepth: 1})
	park := make(chan measure.Epoch)
	var once sync.Once
	release := func() { once.Do(func() { close(park) }) }
	defer srv.Close()
	defer release()
	parked, err := srv.Submit(retryJob(t, park))
	if err != nil {
		t.Fatal(err)
	}
	// The queue slot frees when the worker dequeues the parked job; poll
	// until this second submit lands in it.
	queued := fillQueue(t, srv)

	// The first backoff sleep releases the parked job; the queue drains
	// while the retry waits, and a later attempt is admitted.
	slept := 0
	tk, err := submitWithRetry(srv, retryJob(t, nil), rand.New(rand.NewSource(1)), func(d time.Duration) {
		if d <= 0 || d > 2*time.Second {
			t.Errorf("backoff slept %v", d)
		}
		if slept == 0 {
			release()
		}
		slept++
		time.Sleep(d)
	})
	if err != nil {
		t.Fatalf("retry gave up: %v", err)
	}
	if slept == 0 {
		t.Fatal("retry succeeded without ever backing off")
	}
	if res := parked.Wait(); res.Err == nil {
		t.Fatal("parked job succeeded without an epoch")
	}
	for _, ticket := range []*serve.Ticket{queued, tk} {
		if res := ticket.Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
}

func TestSubmitWithRetryGivesUpAndPassesOtherErrors(t *testing.T) {
	closed := serve.New(serve.Config{Shards: 1})
	closed.Close()
	rng := rand.New(rand.NewSource(2))
	if _, err := submitWithRetry(closed, retryJob(t, nil), rng, func(time.Duration) {
		t.Fatal("slept on a non-ErrBusy error")
	}); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}

	// A queue that never drains exhausts all 7 attempts and surfaces
	// ErrBusy to the caller.
	full := serve.New(serve.Config{Shards: 1, QueueDepth: 1})
	park := make(chan measure.Epoch)
	defer full.Close()
	defer close(park)
	if _, err := full.Submit(retryJob(t, park)); err != nil {
		t.Fatal(err)
	}
	fillQueue(t, full)
	slept := 0
	if _, err := submitWithRetry(full, retryJob(t, nil), rng, func(time.Duration) { slept++ }); !errors.Is(err, serve.ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	if slept != 6 {
		t.Fatalf("slept %d times, want 6 (sleeps between 7 attempts)", slept)
	}
}
