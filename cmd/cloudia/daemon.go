package main

// The -listen mode: run the durable serve daemon. Tenants post cost-matrix
// epochs and advise requests over HTTP/JSON; every acknowledged epoch and
// every served advice is in the write-ahead log before the response goes
// out, so a killed daemon restarted over the same -wal-dir replays to the
// exact state it acknowledged and serves bit-equal advice. SIGTERM (and
// Ctrl-C) drains: in-flight jobs finish and log their advice, then the WAL
// is flushed and closed.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cloudia/internal/serve"
	"cloudia/internal/wal"
)

// parseFsync maps the -fsync flag onto the WAL sync policy.
func parseFsync(s string) (wal.SyncPolicy, error) {
	switch s {
	case "always", "":
		return wal.SyncAlways, nil
	case "batch":
		return wal.SyncBatch, nil
	case "none":
		return wal.SyncNone, nil
	}
	return 0, fmt.Errorf("unknown -fsync policy %q (want always, batch, or none)", s)
}

func runDaemon(cfg runConfig) error {
	sync, err := parseFsync(cfg.fsync)
	if err != nil {
		return err
	}
	d, err := serve.OpenDaemon(serve.DaemonConfig{
		Dir:   cfg.walDir,
		Serve: serve.Config{Shards: cfg.shards},
		WAL:   wal.Options{Sync: sync},
	})
	if err != nil {
		return err
	}

	handler := d.Handler()
	if cfg.pprof {
		// Profiles mount on the daemon's own mux, never the default one, so
		// the endpoints exist only when explicitly asked for: a production
		// daemon does not expose heap contents and CPU samples by accident.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	httpSrv := &http.Server{Addr: cfg.listen, Handler: handler}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	recovered := 0
	for _, tn := range d.Stats().Tenants {
		recovered += int(tn.WAL.RecoveredRecords)
	}
	fmt.Fprintf(os.Stderr, "cloudia: serving on %s (wal %s, %d tenants recovered, %d records replayed)\n",
		cfg.listen, cfg.walDir, len(d.Stats().Tenants), recovered)

	select {
	case err := <-errCh:
		d.Close()
		return err
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "cloudia: %v, draining\n", sig)
	}

	// Stop accepting HTTP first, then drain the solve fabric and flush the
	// WAL — the advice of every job admitted before the signal is on disk
	// when we exit.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
