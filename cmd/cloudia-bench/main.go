// Command cloudia-bench regenerates the paper's evaluation figures on the
// simulated substrate and prints their data series.
//
// Usage:
//
//	cloudia-bench -fig fig12          # one figure
//	cloudia-bench -all                # every figure, ablation, and extension
//	cloudia-bench -all -quick         # smoke-test scale
//	cloudia-bench -fig fig01 -csv     # CSV output for plotting
//	cloudia-bench -list               # available experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cloudia/internal/bench"
)

func main() {
	var (
		fig   = flag.String("fig", "", "experiment id to run (e.g. fig12)")
		all   = flag.Bool("all", false, "run every experiment")
		quick = flag.Bool("quick", false, "reduced scale for smoke testing")
		seed  = flag.Int64("seed", 42, "random seed")
		list  = flag.Bool("list", false, "list experiment ids")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}
	opts := bench.Options{Seed: *seed, Quick: *quick}
	var ids []string
	switch {
	case *all:
		ids = bench.IDs()
	case *fig != "":
		ids = []string{*fig}
	default:
		fmt.Fprintln(os.Stderr, "cloudia-bench: pass -fig <id>, -all, or -list")
		os.Exit(2)
	}
	for _, id := range ids {
		start := time.Now()
		figure, err := bench.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cloudia-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(figure.CSV())
			continue
		}
		fmt.Print(figure.String())
		fmt.Printf("  (%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
