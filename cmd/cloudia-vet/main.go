// Command cloudia-vet is the repo's determinism vettool: it runs the
// internal/lint analyzer suite (maprange, baregoroutine, wallclock,
// walrecord) over the deterministic packages, enforcing the bit-equality
// invariants the test suites pin — at build time, on every package.
//
// Two modes:
//
//	go vet -vettool=$(pwd)/bin/cloudia-vet ./...
//
// speaks the go command's vet-unit protocol (the same JSON-config
// handshake x/tools' unitchecker implements): the go command hands the
// tool one config per package with file lists and export data, and the
// tool writes diagnostics to stderr, exiting non-zero when any survive
// suppression. This is what `make lint` and CI run.
//
//	bin/cloudia-vet [-hints] ./...
//
// is the standalone mode: it resolves packages itself via `go list
// -export` and prints findings directly. With -hints each finding is
// followed by a ready-to-paste //cloudia:nondet-ok suppression template
// (`make lint-fix`).
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cloudia/internal/lint"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		printVersion()
	case len(args) == 1 && args[0] == "-flags":
		// The go command asks which analyzer flags the tool supports; the
		// suite is not configurable, so: none.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(unitcheck(args[0]))
	default:
		os.Exit(standalone(args))
	}
}

// printVersion answers the go command's -V=full tool-identity handshake.
// The build ID must change whenever the binary does — the go command keys
// its vet result cache on it — so it is a hash of the executable itself.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%x\n", name, h.Sum(nil)[:16])
}

// analyzers is the gating suite. Kept in one place so both modes and the
// -help output agree.
var analyzers = lint.All()
