package main

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"cloudia/internal/lint"
)

// vetConfig mirrors the JSON the go command writes for each vet unit (the
// same schema x/tools/go/analysis/unitchecker consumes).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one vet unit and returns the process exit code:
// 0 clean, 1 driver failure, 2 diagnostics reported (matching the
// unitchecker convention the go command expects).
func unitcheck(cfgPath string) int {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cloudia-vet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cloudia-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command expects a facts file for every unit, including ones
	// we skip; the suite computes no cross-package facts, so it is empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "cloudia-vet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly || !inScope(cfg.ImportPath) {
		return 0
	}

	diags, err := lint.Check(lint.Unit{
		ImportPath: cfg.ImportPath,
		GoFiles:    cfg.GoFiles,
		Importer:   exportDataImporter(&cfg),
		GoVersion:  cfg.GoVersion,
	}, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "cloudia-vet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// inScope reports whether any analyzer in the suite would run on the
// package: everything else (stdlib units, out-of-scope packages, test
// variants like "pkg [pkg.test]") short-circuits to success.
func inScope(importPath string) bool {
	if strings.ContainsAny(importPath, " []") {
		return false
	}
	for _, a := range analyzers {
		if a.Scope == nil || a.Scope(importPath) {
			return true
		}
	}
	return false
}

// exportDataImporter resolves imports from the export-data files the go
// command listed in the unit config, exactly as the compiler itself would.
func exportDataImporter(cfg *vetConfig) types.Importer {
	fset := token.NewFileSet()
	return importer.ForCompiler(fset, compilerOr(cfg.Compiler), func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

func compilerOr(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}
