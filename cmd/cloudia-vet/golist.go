package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"os/exec"

	"cloudia/internal/lint"
)

// listedPackage is the slice of `go list -json` output the standalone
// driver needs.
type listedPackage struct {
	ImportPath string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Dir        string
	Module     *struct{ GoVersion string }
}

// standalone resolves the given package patterns with `go list -export`,
// runs the suite over the in-scope matches, and prints findings to
// stdout. With -hints each finding is followed by a ready-to-paste
// suppression template — the `make lint-fix` flow for deciding whether a
// site should be fixed or annotated.
func standalone(args []string) int {
	fs := flag.NewFlagSet("cloudia-vet", flag.ContinueOnError)
	hints := fs.Bool("hints", false, "print a //cloudia:nondet-ok template under each finding")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cloudia-vet [-hints] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := goList(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cloudia-vet: %v\n", err)
		return 1
	}

	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	imp := importer.ForCompiler(token.NewFileSet(), "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	found := 0
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || !inScope(p.ImportPath) {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = p.Dir + string(os.PathSeparator) + f
		}
		goVersion := ""
		if p.Module != nil {
			goVersion = p.Module.GoVersion
		}
		diags, err := lint.Check(lint.Unit{
			ImportPath: p.ImportPath,
			GoFiles:    files,
			Importer:   imp,
			GoVersion:  goVersion,
		}, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cloudia-vet: %v\n", err)
			return 1
		}
		for _, d := range diags {
			found++
			fmt.Println(d)
			if *hints {
				fmt.Printf("\tto suppress, put this on the line above %s:%d:\n\t%s <why this cannot break bit-equality>\n",
					d.Pos.Filename, d.Pos.Line, lint.SuppressionMarker)
			}
		}
	}
	if found > 0 {
		fmt.Printf("cloudia-vet: %d finding(s)\n", found)
		return 1
	}
	return 0
}

// goList shells out to the go command for package resolution — the one
// authority on build lists — requesting export data so type checking can
// read compiled dependency APIs instead of re-checking the world.
func goList(patterns []string) ([]listedPackage, error) {
	cmdArgs := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export,Standard,DepOnly,GoFiles,Dir,Module"}, patterns...)
	cmd := exec.Command("go", cmdArgs...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, errb.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
