package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildVet compiles the vettool once per test binary into a temp dir.
func buildVet(t *testing.T) string {
	t.Helper()
	tool := filepath.Join(t.TempDir(), "cloudia-vet")
	cmd := exec.Command("go", "build", "-o", tool, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building cloudia-vet: %v\n%s", err, out)
	}
	return tool
}

// seedModule writes a throwaway module named cloudia so package paths land
// in the deterministic scope, with the given file under internal/solver.
func seedModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	pkg := filepath.Join(dir, "internal", "solver")
	if err := os.MkdirAll(pkg, 0o777); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(dir, "go.mod"), "module cloudia\n\ngo 1.23\n")
	writeFile(t, filepath.Join(pkg, "solver.go"), src)
	return dir
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}

const violatingSrc = `package solver

func Order(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
`

const cleanSrc = `package solver

func Order(keys []string) int {
	n := 0
	for range keys {
		n++
	}
	return n
}
`

// TestGoVetFailsOnSeededMapRange is the acceptance demonstration: a map
// range seeded into a deterministic package makes `go vet -vettool` fail
// with a maprange diagnostic.
func TestGoVetFailsOnSeededMapRange(t *testing.T) {
	tool := buildVet(t)
	dir := seedModule(t, violatingSrc)

	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed on a seeded map-range violation:\n%s", out)
	}
	if !strings.Contains(string(out), "maprange") || !strings.Contains(string(out), "range over map m") {
		t.Fatalf("expected a maprange diagnostic, got:\n%s", out)
	}
}

func TestGoVetPassesOnCleanModule(t *testing.T) {
	tool := buildVet(t)
	dir := seedModule(t, cleanSrc)

	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
	}
}

func TestGoVetPassesWithReasonedSuppression(t *testing.T) {
	tool := buildVet(t)
	dir := seedModule(t, strings.Replace(violatingSrc,
		"\tfor k := range m {",
		"\t//cloudia:nondet-ok fixture: callers sort the returned keys\n\tfor k := range m {", 1))

	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet failed despite a reasoned suppression: %v\n%s", err, out)
	}
}

// TestStandaloneHints covers the `make lint-fix` flow: direct invocation
// resolves packages itself and prints a suppression template per finding.
func TestStandaloneHints(t *testing.T) {
	tool := buildVet(t)
	dir := seedModule(t, violatingSrc)

	cmd := exec.Command(tool, "-hints", "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("standalone mode passed on a violation:\n%s", out)
	}
	for _, want := range []string{"maprange", "//cloudia:nondet-ok", "1 finding(s)"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("standalone -hints output missing %q:\n%s", want, out)
		}
	}
}

func TestVersionHandshake(t *testing.T) {
	tool := buildVet(t)
	out, err := exec.Command(tool, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatal(err)
	}
	fields := strings.Fields(string(out))
	// The go command requires "<name> version ..." with a trailing
	// buildID= for devel tools (cmd/go/internal/work.Builder.toolID).
	if len(fields) < 3 || fields[1] != "version" || !strings.HasPrefix(fields[len(fields)-1], "buildID=") {
		t.Fatalf("-V=full output %q does not satisfy the go command's handshake", out)
	}
}
